package router

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"repro/internal/bag"
	"repro/internal/bootstrap"
	"repro/internal/core"
	"repro/internal/randx"
	"repro/internal/server"
	"repro/internal/signature"
)

// testEngine builds a member engine. Every member of a fleet MUST share
// the same config and seed: a stream's detector is seeded from (engine
// seed, stream id), which is what makes placement and migration
// invisible in the scores.
func testEngine(t testing.TB) *core.Engine {
	t.Helper()
	eng, err := core.NewEngine(core.EngineConfig{
		Template: core.Config{
			Tau: 3, TauPrime: 3,
			Bootstrap: bootstrap.Config{Replicates: 150},
		},
		Factory: signature.HistogramFactory(-6, 9, 24),
		Seed:    42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// fleet is an in-process cluster: n member servers plus a router over
// them, all on httptest listeners.
type fleet struct {
	router  *Router
	front   *httptest.Server
	members []*httptest.Server
	engines []*core.Engine
}

func newFleet(t testing.TB, n int) *fleet {
	t.Helper()
	f := &fleet{}
	var urls []string
	for i := 0; i < n; i++ {
		eng := testEngine(t)
		srv, err := server.New(server.Config{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(func() {
			ts.Close()
			srv.Close()
		})
		f.members = append(f.members, ts)
		f.engines = append(f.engines, eng)
		urls = append(urls, ts.URL)
	}
	rt, err := New(Config{Members: urls})
	if err != nil {
		t.Fatal(err)
	}
	f.router = rt
	f.front = httptest.NewServer(rt)
	t.Cleanup(f.front.Close)
	return f
}

// streamBag generates the step-th deterministic bag of a stream, with a
// mean shift at step 8 so scored rows are non-trivial.
func streamBag(id string, step int) bag.Bag {
	rng := randx.New(randx.SplitSeedString(500, id) + int64(step))
	vals := make([]float64, 50)
	mu := 0.0
	if step >= 8 {
		mu = 3
	}
	for i := range vals {
		vals[i] = rng.Normal(mu, 1)
	}
	return bag.FromScalars(step, vals)
}

// resultRow mirrors the member server's NDJSON response row.
type resultRow struct {
	Stream  string   `json:"stream"`
	BagT    int      `json:"bag_t"`
	Pending bool     `json:"pending,omitempty"`
	T       *int     `json:"t,omitempty"`
	Score   *float64 `json:"score,omitempty"`
	Lo      *float64 `json:"lo,omitempty"`
	Up      *float64 `json:"up,omitempty"`
	Kappa   *float64 `json:"kappa,omitempty"`
	Alarm   bool     `json:"alarm,omitempty"`
	Error   string   `json:"error,omitempty"`
}

func pushBody(step int, ids ...string) string {
	var b strings.Builder
	for _, id := range ids {
		bagJSON, _ := json.Marshal(streamBag(id, step).Points)
		fmt.Fprintf(&b, "{\"stream\":%q,\"bag\":%s}\n", id, bagJSON)
	}
	return b.String()
}

func postNDJSON(t *testing.T, url, body string) (*http.Response, []resultRow) {
	t.Helper()
	resp, err := http.Post(url+"/v1/push", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rows []resultRow
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		var row resultRow
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("bad response row %q: %v", sc.Text(), err)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp, rows
}

func doPush(t *testing.T, url, body string) []resultRow {
	t.Helper()
	resp, rows := postNDJSON(t, url, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("push status %d (rows %v)", resp.StatusCode, rows)
	}
	return rows
}

// referencePoints runs the streams through standalone detectors with the
// fleet's per-stream configs — the oracle every routed/migrated run must
// match bit-for-bit.
func referencePoints(t *testing.T, eng *core.Engine, ids []string, steps int) map[string][]*core.Point {
	t.Helper()
	ref := make(map[string][]*core.Point)
	for _, id := range ids {
		det, err := core.New(eng.StreamConfig(id))
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < steps; step++ {
			p, err := det.Push(streamBag(id, step))
			if err != nil {
				t.Fatal(err)
			}
			ref[id] = append(ref[id], p)
		}
	}
	return ref
}

// checkRow compares one routed response row against the reference point
// for that (stream, step).
func checkRow(t *testing.T, row resultRow, id string, step int, want *core.Point) {
	t.Helper()
	if row.Error != "" {
		t.Fatalf("stream %s step %d: error row %q", id, step, row.Error)
	}
	if row.Stream != id || row.BagT != step {
		t.Fatalf("row out of order: got (%s, %d), want (%s, %d)", row.Stream, row.BagT, id, step)
	}
	if want == nil {
		if !row.Pending || row.Score != nil {
			t.Fatalf("stream %s step %d: want pending, got %+v", id, step, row)
		}
		return
	}
	if row.Score == nil || *row.Score != want.Score ||
		*row.Lo != want.Interval.Lo || *row.Up != want.Interval.Up ||
		row.Alarm != want.Alarm || *row.T != want.T {
		t.Fatalf("stream %s step %d: row %+v differs from reference %+v", id, step, row, want)
	}
}

// streamsOwnedBy picks stream ids the ring assigns to each member, so
// tests can aim rows at specific instances.
func streamsOwnedBy(r *Router, member string, n int) []string {
	var out []string
	for i := 0; len(out) < n && i < 100000; i++ {
		id := fmt.Sprintf("s-%d", i)
		if r.Owner(id) == member {
			out = append(out, id)
		}
	}
	return out
}

// TestRouterPushEquivalence: rows fan out across a 3-member fleet and
// come back in input order, every scored row bit-identical to a
// standalone single-engine run of the same streams.
func TestRouterPushEquivalence(t *testing.T) {
	f := newFleet(t, 3)
	ids := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	owners := make(map[string]bool)
	for _, id := range ids {
		owners[f.router.Owner(id)] = true
	}
	if len(owners) < 2 {
		t.Fatalf("test ids all landed on one member; pick better ids (owners %v)", owners)
	}
	const steps = 12
	ref := referencePoints(t, f.engines[0], ids, steps)
	for step := 0; step < steps; step++ {
		rows := doPush(t, f.front.URL, pushBody(step, ids...))
		if len(rows) != len(ids) {
			t.Fatalf("step %d: %d rows for %d input rows", step, len(rows), len(ids))
		}
		for i, id := range ids {
			checkRow(t, rows[i], id, step, ref[id][step])
		}
	}

	// The aggregated stream listing sees every stream exactly once, each
	// annotated with its owning member.
	var listing struct {
		Streams []fleetStream `json:"streams"`
	}
	getJSON(t, f.front.URL+"/v1/streams", &listing)
	if len(listing.Streams) != len(ids) {
		t.Fatalf("fleet listing has %d streams, want %d: %+v", len(listing.Streams), len(ids), listing)
	}
	for _, fs := range listing.Streams {
		if fs.Member != f.router.Owner(fs.ID) {
			t.Fatalf("stream %s listed on %s but routed to %s", fs.ID, fs.Member, f.router.Owner(fs.ID))
		}
		if fs.Pushed == 0 {
			t.Fatalf("stream %s listed with zero pushes", fs.ID)
		}
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, msg)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// TestRouterMigration: live-migrate streams mid-traffic and verify the
// scores never notice — the migrated streams' remaining rows still match
// the standalone reference bit-for-bit, routing flips to the target, and
// the source no longer knows the streams.
func TestRouterMigration(t *testing.T) {
	f := newFleet(t, 2)
	source, target := f.members[0].URL, f.members[1].URL
	moving := streamsOwnedBy(f.router, source, 2)
	staying := streamsOwnedBy(f.router, target, 1)
	ids := append(append([]string{}, moving...), staying...)
	const steps, cut = 14, 7
	ref := referencePoints(t, f.engines[0], ids, steps)

	for step := 0; step < cut; step++ {
		rows := doPush(t, f.front.URL, pushBody(step, ids...))
		for i, id := range ids {
			checkRow(t, rows[i], id, step, ref[id][step])
		}
	}

	body, _ := json.Marshal(map[string]any{"streams": moving, "target": target})
	resp, err := http.Post(f.front.URL+"/v1/migrate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("migrate status %d: %s", resp.StatusCode, blob)
	}
	var migrated struct {
		Migrated []string `json:"migrated"`
		Target   string   `json:"target"`
	}
	if err := json.Unmarshal(blob, &migrated); err != nil {
		t.Fatal(err)
	}
	wantMoved := append([]string{}, moving...)
	sort.Strings(wantMoved)
	if !equalStrings(migrated.Migrated, wantMoved) || migrated.Target != target {
		t.Fatalf("migrate response %s, want streams %v -> %s", blob, wantMoved, target)
	}
	for _, id := range moving {
		if got := f.router.Owner(id); got != target {
			t.Fatalf("stream %s routes to %s after migration, want %s", id, got, target)
		}
	}

	// Traffic continues through the router; rows for the moved streams
	// now execute on the target, bit-identically.
	for step := cut; step < steps; step++ {
		rows := doPush(t, f.front.URL, pushBody(step, ids...))
		for i, id := range ids {
			checkRow(t, rows[i], id, step, ref[id][step])
		}
	}

	// The source must have forgotten the moved streams entirely (a push
	// addressed to it directly would RE-CREATE them from scratch, which
	// is exactly the split-brain the router's ownership flip prevents).
	var listing struct {
		Streams []fleetStream `json:"streams"`
	}
	getJSON(t, source+"/v1/streams", &listing)
	for _, fs := range listing.Streams {
		for _, id := range moving {
			if fs.ID == id {
				t.Fatalf("source still lists migrated stream %s", id)
			}
		}
	}

	// Migrating a stream onto the member it already routes to is a 409.
	resp2, err := http.Post(f.front.URL+"/v1/migrate", "application/json",
		strings.NewReader(fmt.Sprintf(`{"streams":[%q],"target":%q}`, moving[0], target)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("re-migrate status %d, want 409", resp2.StatusCode)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRouterMemberDown: a dead member fails only its own rows — each
// gets an error row naming the member, the live member's rows still
// score, the batch stays 200, and /v1/streams reports the member
// unreachable instead of failing the aggregation.
func TestRouterMemberDown(t *testing.T) {
	f := newFleet(t, 2)
	deadURL := f.members[0].URL
	deadIDs := streamsOwnedBy(f.router, deadURL, 2)
	liveIDs := streamsOwnedBy(f.router, f.members[1].URL, 2)
	f.members[0].Close()

	ids := append(append([]string{}, deadIDs...), liveIDs...)
	ref := referencePoints(t, f.engines[1], liveIDs, 1)
	rows := doPush(t, f.front.URL, pushBody(0, ids...))
	if len(rows) != len(ids) {
		t.Fatalf("%d rows for %d inputs", len(rows), len(ids))
	}
	for i, id := range deadIDs {
		row := rows[i]
		if row.Stream != id || row.Error == "" || !strings.Contains(row.Error, deadURL) {
			t.Fatalf("dead-member row %d = %+v, want error naming %s", i, row, deadURL)
		}
	}
	for i, id := range liveIDs {
		checkRow(t, rows[len(deadIDs)+i], id, 0, ref[id][0])
	}

	var listing struct {
		Streams     []fleetStream `json:"streams"`
		Unreachable []string      `json:"unreachable"`
	}
	getJSON(t, f.front.URL+"/v1/streams", &listing)
	if !equalStrings(listing.Unreachable, []string{deadURL}) {
		t.Fatalf("unreachable = %v, want [%s]", listing.Unreachable, deadURL)
	}
	if len(listing.Streams) != len(liveIDs) {
		t.Fatalf("listing has %d streams, want the %d live ones", len(listing.Streams), len(liveIDs))
	}
}

// TestRouterBusyPropagation: when a member answers 429 the router
// answers 429 with the MAX Retry-After across busy members, rows owned
// by healthy members are still applied, and the busy rows say so.
func TestRouterBusyPropagation(t *testing.T) {
	busy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		http.Error(w, "busy", http.StatusTooManyRequests)
	}))
	defer busy.Close()

	eng := testEngine(t)
	srv, err := server.New(server.Config{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	live := httptest.NewServer(srv)
	defer func() { live.Close(); srv.Close() }()

	rt, err := New(Config{Members: []string{busy.URL, live.URL}})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt)
	defer front.Close()

	busyIDs := streamsOwnedBy(rt, busy.URL, 2)
	liveIDs := streamsOwnedBy(rt, live.URL, 1)
	ids := append(append([]string{}, busyIDs...), liveIDs...)

	resp, rows := postNDJSON(t, front.URL, pushBody(0, ids...))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After %q, want 7 (the busy member's)", got)
	}
	if len(rows) != len(ids) {
		t.Fatalf("%d rows for %d inputs", len(rows), len(ids))
	}
	for i, id := range busyIDs {
		row := rows[i]
		if row.Stream != id || !strings.Contains(row.Error, "busy") || !strings.Contains(row.Error, "NOT applied") {
			t.Fatalf("busy row %+v, want busy error for %s", row, id)
		}
	}
	// The live rows WERE applied: the member really holds the stream.
	if n := eng.Stats().Open; n != len(liveIDs) {
		t.Fatalf("live member has %d streams open, want %d", n, len(liveIDs))
	}
	for i, id := range liveIDs {
		row := rows[len(busyIDs)+i]
		if row.Stream != id || row.Error != "" || !row.Pending {
			t.Fatalf("live row %+v, want applied (pending) row for %s", row, id)
		}
	}
}

// TestRouterValidation: malformed input is rejected before ANY row is
// forwarded, so a 400 always means "nothing was applied".
func TestRouterValidation(t *testing.T) {
	f := newFleet(t, 2)
	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(f.front.URL+"/v1/push", "application/x-ndjson", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	good := pushBody(0, "ok-stream")
	cases := []struct {
		name, body string
	}{
		{"bad json", good + "{nope\n"},
		{"missing stream", good + `{"bag":[[1]]}` + "\n"},
		{"empty bag", good + `{"stream":"x","bag":[]}` + "\n"},
		{"ragged bag", good + `{"stream":"x","bag":[[1,2],[3]]}` + "\n"},
		{"empty batch", "\n\n"},
	}
	for _, tc := range cases {
		if resp := post(tc.body); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
	// The good row travelled WITH invalid rows, so it must never have
	// been forwarded: the fleet holds no streams.
	for i, eng := range f.engines {
		if n := eng.Stats().Open; n != 0 {
			t.Fatalf("member %d has %d streams open after rejected batches", i, n)
		}
	}

	// Migration request validation.
	migrate := func(body string) int {
		t.Helper()
		resp, err := http.Post(f.front.URL+"/v1/migrate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := migrate(`{"streams":[],"target":"` + f.members[0].URL + `"}`); got != http.StatusBadRequest {
		t.Fatalf("empty migrate: %d, want 400", got)
	}
	if got := migrate(`{"streams":["a"],"target":"http://nonmember:1"}`); got != http.StatusBadRequest {
		t.Fatalf("non-member target: %d, want 400", got)
	}
	if got := migrate(`{"streams":["a","a"],"target":"` + f.members[0].URL + `"}`); got != http.StatusBadRequest {
		t.Fatalf("duplicate stream: %d, want 400", got)
	}
}

// TestRouterConfigErrors: constructor validation.
func TestRouterConfigErrors(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("router with no members accepted")
	}
	if _, err := New(Config{Members: []string{"ftp://x"}}); err == nil {
		t.Fatal("non-http member accepted")
	}
	if _, err := New(Config{Members: []string{"http://a", "http://a/"}}); err == nil {
		t.Fatal("duplicate member (after normalization) accepted")
	}
}

// TestRouterMetricsExposition: the router scrape carries its own
// counters, a per-member up gauge, and the member counters summed across
// the fleet.
func TestRouterMetricsExposition(t *testing.T) {
	f := newFleet(t, 2)
	ids := []string{"m-a", "m-b", "m-c"}
	owners := make(map[string]bool)
	for _, id := range ids {
		owners[f.router.Owner(id)] = true
	}
	for step := 0; step < 2; step++ {
		doPush(t, f.front.URL, pushBody(step, ids...))
	}
	target := f.members[1].URL
	var moving []string
	for _, id := range ids {
		if f.router.Owner(id) != target {
			moving = append(moving, id)
		}
	}
	if len(moving) > 0 {
		body, _ := json.Marshal(map[string]any{"streams": moving, "target": target})
		resp, err := http.Post(f.front.URL+"/v1/migrate", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		blob, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("migrate: %d: %s", resp.StatusCode, blob)
		}
	}

	resp, err := http.Get(f.front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(blob)
	for _, want := range []string{
		"bagcpd_router_push_batches_total 2",
		fmt.Sprintf("bagcpd_router_push_rows_total %d", 2*len(ids)),
		"bagcpd_router_forwarded_batches_total",
		"bagcpd_router_rejected_total 0",
		"bagcpd_router_member_errors_total 0",
		fmt.Sprintf("bagcpd_router_migrations_total %d", len(moving)),
		"bagcpd_router_migration_failures_total 0",
		fmt.Sprintf("bagcpd_router_member_up{member=%q} 1", f.members[0].URL),
		fmt.Sprintf("bagcpd_router_member_up{member=%q} 1", f.members[1].URL),
		// Fleet-aggregated member counters: the members' samples summed —
		// each step produced one sub-batch per distinct owning member.
		fmt.Sprintf("bagcpd_push_batches_total %d", 2*len(owners)),
		fmt.Sprintf("bagcpd_streams_extracted_total %d", len(moving)),
		fmt.Sprintf("bagcpd_streams_adopted_total %d", len(moving)),
		fmt.Sprintf("bagcpd_streams_open %d", len(ids)),
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}

	// /v1/members: both up, overrides counted on the target.
	var members struct {
		Members []memberInfo `json:"members"`
	}
	getJSON(t, f.front.URL+"/v1/members", &members)
	if len(members.Members) != 2 {
		t.Fatalf("members = %+v", members)
	}
	overrides := 0
	for _, mi := range members.Members {
		if !mi.Up {
			t.Fatalf("member %s reported down", mi.Member)
		}
		overrides += mi.Overrides
	}
	wantOverrides := 0
	for _, id := range moving {
		if f.router.ring.owner(id) != target {
			wantOverrides++
		}
	}
	if overrides != wantOverrides {
		t.Fatalf("override count %d, want %d", overrides, wantOverrides)
	}
}
