package router

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// routerMetrics are the router's own counters. Fleet-level member
// counters are not mirrored here — the scrape aggregates them live from
// the members (see handleMetrics), so the router stays stateless about
// member internals.
type routerMetrics struct {
	pushBatches     atomic.Uint64 // client push batches accepted
	pushRows        atomic.Uint64 // rows routed
	forwarded       atomic.Uint64 // per-member sub-batches forwarded
	rejected        atomic.Uint64 // batches answered 429 (some member busy)
	memberErrors    atomic.Uint64 // failed member requests (any endpoint)
	migrations      atomic.Uint64 // streams migrated successfully
	migrateFailures atomic.Uint64 // migration groups that failed/rolled back
}

// handleMetrics renders the router's own counters, a per-member
// liveness gauge, and the member fleet's unlabeled counters summed
// across every reachable member — one scrape sees the whole cluster.
func (r *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	type memberScrape struct {
		member  string
		samples map[string]float64
		err     error
	}
	scrapes := make([]memberScrape, len(r.members))
	var wg sync.WaitGroup
	for i, m := range r.members {
		wg.Add(1)
		go func(i int, m string) {
			defer wg.Done()
			scrapes[i].member = m
			scrapes[i].samples, scrapes[i].err = r.scrapeMember(m)
		}(i, m)
	}
	wg.Wait()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	m := &r.met
	counter("bagcpd_router_push_batches_total", "Client push batches accepted by the router.", m.pushBatches.Load())
	counter("bagcpd_router_push_rows_total", "Push rows routed to members.", m.pushRows.Load())
	counter("bagcpd_router_forwarded_batches_total", "Per-member sub-batches forwarded.", m.forwarded.Load())
	counter("bagcpd_router_rejected_total", "Push batches answered 429 because a member was busy.", m.rejected.Load())
	counter("bagcpd_router_member_errors_total", "Failed member requests.", m.memberErrors.Load())
	counter("bagcpd_router_migrations_total", "Streams migrated between members.", m.migrations.Load())
	counter("bagcpd_router_migration_failures_total", "Migration groups that failed and were rolled back.", m.migrateFailures.Load())

	fmt.Fprint(w, "# HELP bagcpd_router_member_up Whether the member answered the last metrics scrape.\n")
	fmt.Fprint(w, "# TYPE bagcpd_router_member_up gauge\n")
	up := 0
	for _, sc := range scrapes {
		v := 0
		if sc.err == nil {
			v = 1
			up++
		} else {
			r.met.memberErrors.Add(1)
		}
		fmt.Fprintf(w, "bagcpd_router_member_up{member=%q} %d\n", sc.member, v)
	}

	// Sum the members' unlabeled samples by name. Labeled samples (the
	// latency summary quantiles) don't sum meaningfully and are skipped.
	agg := make(map[string]float64)
	for _, sc := range scrapes {
		for name, v := range sc.samples {
			agg[name] += v
		}
	}
	names := make([]string, 0, len(agg))
	for name := range agg {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "# Member metrics summed across %d/%d reachable members.\n", up, len(scrapes))
	for _, name := range names {
		fmt.Fprintf(w, "%s %s\n", name, strconv.FormatFloat(agg[name], 'g', -1, 64))
	}
}

// scrapeMember fetches one member's /metrics and returns its unlabeled
// samples by name.
func (r *Router) scrapeMember(m string) (map[string]float64, error) {
	resp, err := r.client.Get(m + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	samples := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok || strings.Contains(name, "{") {
			continue // labeled sample: not summable across members
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			continue
		}
		samples[name] = v
	}
	return samples, sc.Err()
}
