package router

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/obs"
)

// routerMetrics holds the router's handles into its obs.Registry: the
// router-tier counters and the per-member liveness gauge. Fleet-level
// member series are not mirrored here — the scrape aggregates them live
// from the members (see handleMetrics), so the router stays stateless
// about member internals.
type routerMetrics struct {
	reg *obs.Registry

	pushBatches     *obs.Counter  // client push batches accepted
	pushRows        *obs.Counter  // rows routed
	forwarded       *obs.Counter  // per-member sub-batches forwarded
	rejected        *obs.Counter  // batches answered 429 (some member busy)
	memberErrors    *obs.Counter  // failed member requests (any endpoint)
	migrations      *obs.Counter  // streams migrated successfully
	migrateFailures *obs.Counter  // migration groups that failed/rolled back
	memberUp        *obs.GaugeVec // member answered the last metrics scrape
}

// newRouterMetrics registers the router's series in the order the
// pre-registry renderer emitted them, same names and help texts.
func newRouterMetrics() routerMetrics {
	reg := obs.NewRegistry()
	return routerMetrics{
		reg:             reg,
		pushBatches:     reg.Counter("bagcpd_router_push_batches_total", "Client push batches accepted by the router."),
		pushRows:        reg.Counter("bagcpd_router_push_rows_total", "Push rows routed to members."),
		forwarded:       reg.Counter("bagcpd_router_forwarded_batches_total", "Per-member sub-batches forwarded."),
		rejected:        reg.Counter("bagcpd_router_rejected_total", "Push batches answered 429 because a member was busy."),
		memberErrors:    reg.Counter("bagcpd_router_member_errors_total", "Failed member requests."),
		migrations:      reg.Counter("bagcpd_router_migrations_total", "Streams migrated between members."),
		migrateFailures: reg.Counter("bagcpd_router_migration_failures_total", "Migration groups that failed and were rolled back."),
		memberUp: reg.GaugeVec("bagcpd_router_member_up",
			"Whether the member answered the last metrics scrape.", "member"),
	}
}

// handleMetrics renders the router's own registry, then the member
// fleet's series summed across every reachable member — one scrape sees
// the whole cluster. Series identity for the sum is the full sample
// name plus its canonical label set, so two members running different
// statistics keep distinct `statistic="..."` series instead of having
// their labeled samples dropped, and each member family keeps its
// HELP/TYPE metadata on the aggregate page.
func (r *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	type memberScrape struct {
		member string
		fams   []*obs.Family
		err    error
	}
	scrapes := make([]memberScrape, len(r.members))
	var wg sync.WaitGroup
	for i, m := range r.members {
		wg.Add(1)
		go func(i int, m string) {
			defer wg.Done()
			scrapes[i].member = m
			scrapes[i].fams, scrapes[i].err = r.scrapeMember(m)
		}(i, m)
	}
	wg.Wait()

	up := 0
	expositions := make([][]*obs.Family, 0, len(scrapes))
	for _, sc := range scrapes {
		v := 0.0
		if sc.err == nil {
			v = 1
			up++
			expositions = append(expositions, sc.fams)
		} else {
			r.met.memberErrors.Inc()
			r.log.Warn("member metrics scrape failed", "member", sc.member, "error", sc.err)
		}
		r.met.memberUp.With(sc.member).Set(v)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	r.met.reg.Render(w)
	fmt.Fprintf(w, "# Member metrics summed across %d/%d reachable members.\n", up, len(scrapes))
	renderFamilies(w, fleetAggregate(expositions))
}

// scrapeMember fetches one member's /metrics as parsed families.
func (r *Router) scrapeMember(m string) ([]*obs.Family, error) {
	resp, err := r.client.Get(m + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	return obs.ParseExposition(resp.Body)
}

// fleetAggregate merges member expositions: samples sum by series
// identity (sample name + canonical labels), families keep the first
// member's HELP/TYPE (disagreeing types degrade to untyped, as during a
// mixed-version roll), and family/sample order follows first
// appearance so histograms keep their bucket order. Summary quantile
// samples are skipped — order statistics do not sum across processes —
// while the summaries' _sum/_count still aggregate.
func fleetAggregate(expositions [][]*obs.Family) []*obs.Family {
	var order []*obs.Family
	byName := make(map[string]*obs.Family)
	index := make(map[string]map[string]int) // family -> series key -> sample index
	for _, fams := range expositions {
		for _, mf := range fams {
			af, ok := byName[mf.Name]
			if !ok {
				af = &obs.Family{Name: mf.Name, Help: mf.Help, Type: mf.Type}
				byName[mf.Name] = af
				index[mf.Name] = make(map[string]int)
				order = append(order, af)
			} else if af.Type != mf.Type {
				af.Type = "untyped"
			}
			idx := index[mf.Name]
			for _, s := range mf.Samples {
				if s.HasLabel("quantile") {
					continue
				}
				key := s.Name + s.Labels
				if i, ok := idx[key]; ok {
					af.Samples[i].Value += s.Value
				} else {
					idx[key] = len(af.Samples)
					af.Samples = append(af.Samples, obs.Sample{Name: s.Name, Labels: s.Labels, Value: s.Value})
				}
			}
		}
	}
	return order
}

// renderFamilies writes aggregated families in Prometheus text format.
func renderFamilies(w io.Writer, fams []*obs.Family) {
	for _, f := range fams {
		if len(f.Samples) == 0 {
			continue
		}
		help := f.Help
		if help == "" {
			help = "(member exposition carried no help text)"
		}
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.Name, help, f.Name, f.Type)
		for _, s := range f.Samples {
			fmt.Fprintf(w, "%s%s %s\n", s.Name, s.Labels, strconv.FormatFloat(s.Value, 'g', -1, 64))
		}
	}
}
