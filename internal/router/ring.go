package router

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// ring is a consistent-hash ring over a static member list. Each member
// is hashed onto the ring at `replicas` virtual points; a stream id is
// owned by the member whose first virtual point follows the id's hash
// clockwise. Consistency is the point: adding or removing one member
// moves only the streams in the arcs it gains or loses (~1/n of them),
// instead of reshuffling the whole id space the way `hash(id) % n`
// would — and because the layout is a pure function of (members,
// replicas), every router replica and every operator tool agrees on
// ownership with no coordination.
type ring struct {
	points []ringPoint // sorted by (hash, member)
}

type ringPoint struct {
	hash   uint64
	member string
}

// defaultReplicas is the virtual-node count per member. 128 keeps the
// max/min member-load spread around ~1.2x for realistic fleet sizes
// while the ring stays small enough that building it is trivial.
const defaultReplicas = 128

func newRing(members []string, replicas int) (*ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("router: at least one member is required")
	}
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	seen := make(map[string]bool, len(members))
	r := &ring{points: make([]ringPoint, 0, len(members)*replicas)}
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("router: empty member address")
		}
		if seen[m] {
			return nil, fmt.Errorf("router: duplicate member %q", m)
		}
		seen[m] = true
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(m + "#" + strconv.Itoa(i)), member: m})
		}
	}
	// The member tiebreak on equal hashes keeps the layout deterministic
	// even in the (astronomically unlikely) event of a vnode collision.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r, nil
}

// owner returns the member that owns stream id by the ring alone —
// migration overrides live in the Router, not here.
func (r *ring) owner(id string) string {
	h := hash64(id)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the first point clockwise from the top of the ring
	}
	return r.points[i].member
}

// hash64 is FNV-1a 64 with a murmur-style avalanche finalizer. The
// finalizer is not decoration: member addresses differ in a digit or two
// ("http://10.0.0.3:8080" vs "...0.4:8080"), and raw FNV's weak
// avalanche leaves their vnode hashes correlated — measured on a 4-member
// fleet it gave one member a 0.1x/2x load share. The finalizer restores
// full bit diffusion and the spread tightens to ~1.1x.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
