package router

import (
	"fmt"
	"testing"
)

func ringMembers(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return out
}

// TestRingDeterministicAndValid: ownership is a pure function of
// (members, replicas) — two independently built rings agree on every id
// — and every owner is a real member.
func TestRingDeterministicAndValid(t *testing.T) {
	members := ringMembers(5)
	a, err := newRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := newRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	valid := make(map[string]bool)
	for _, m := range members {
		valid[m] = true
	}
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("stream-%d", i)
		own := a.owner(id)
		if own != b.owner(id) {
			t.Fatalf("id %s: rings disagree (%s vs %s)", id, own, b.owner(id))
		}
		if !valid[own] {
			t.Fatalf("id %s: owner %q is not a member", id, own)
		}
	}
}

// TestRingBalance: with the default replica count no member owns a
// wildly disproportionate share of a large id population.
func TestRingBalance(t *testing.T) {
	members := ringMembers(4)
	r, err := newRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const n = 20000
	for i := 0; i < n; i++ {
		counts[r.owner(fmt.Sprintf("stream-%d", i))]++
	}
	fair := n / len(members)
	for _, m := range members {
		if c := counts[m]; c < fair/3 || c > fair*3 {
			t.Fatalf("member %s owns %d of %d ids (fair share %d): ring badly unbalanced\n%v", m, c, n, fair, counts)
		}
	}
}

// TestRingConsistency: removing one member only moves the ids that
// member owned; everything else keeps its owner. This is the property
// that makes the ring worth having over hash(id) %% n.
func TestRingConsistency(t *testing.T) {
	members := ringMembers(5)
	full, err := newRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	smaller, err := newRing(members[:4], 0)
	if err != nil {
		t.Fatal(err)
	}
	removed := members[4]
	moved := 0
	for i := 0; i < 5000; i++ {
		id := fmt.Sprintf("stream-%d", i)
		before, after := full.owner(id), smaller.owner(id)
		if before == removed {
			moved++
			continue // had to move somewhere
		}
		if before != after {
			t.Fatalf("id %s moved %s -> %s though %s was the member removed", id, before, after, removed)
		}
	}
	if moved == 0 {
		t.Fatal("removed member owned no ids out of 5000: suspicious ring")
	}
}

func TestRingErrors(t *testing.T) {
	if _, err := newRing(nil, 0); err == nil {
		t.Fatal("empty member list accepted")
	}
	if _, err := newRing([]string{"a", "a"}, 0); err == nil {
		t.Fatal("duplicate member accepted")
	}
	if _, err := newRing([]string{"a", ""}, 0); err == nil {
		t.Fatal("empty member address accepted")
	}
}
