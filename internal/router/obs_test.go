package router

import (
	"bufio"
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/bootstrap"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/signature"
)

// newStatFleet builds a fleet whose members run DIFFERENT statistics —
// not a valid migration fleet (members must share config for that), but
// exactly the shape that exercises label-aware metric aggregation.
func newStatFleet(t *testing.T, stats []string) *fleet {
	t.Helper()
	f := &fleet{}
	var urls []string
	for _, stat := range stats {
		eng, err := core.NewEngine(core.EngineConfig{
			Template: core.Config{
				Tau: 3, TauPrime: 3,
				Statistic: stat,
				Bootstrap: bootstrap.Config{Replicates: 150},
			},
			Factory: signature.HistogramFactory(-6, 9, 24),
			Seed:    42,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.Config{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(func() {
			ts.Close()
			srv.Close()
		})
		f.members = append(f.members, ts)
		f.engines = append(f.engines, eng)
		urls = append(urls, ts.URL)
	}
	rt, err := New(Config{Members: urls})
	if err != nil {
		t.Fatal(err)
	}
	f.router = rt
	f.front = httptest.NewServer(rt)
	t.Cleanup(f.front.Close)
	return f
}

// streamsPerMember finds one stream id routed to each member, so a test
// can guarantee every member sees traffic.
func streamsPerMember(t *testing.T, f *fleet) []string {
	t.Helper()
	byMember := make(map[string]string)
	for i := 0; len(byMember) < len(f.members) && i < 4096; i++ {
		id := "obs-" + strconv.Itoa(i)
		owner := f.router.Owner(id)
		if _, ok := byMember[owner]; !ok {
			byMember[owner] = id
		}
	}
	if len(byMember) != len(f.members) {
		t.Fatalf("could not find a stream for every member (%d/%d)", len(byMember), len(f.members))
	}
	ids := make([]string, 0, len(byMember))
	for _, m := range f.members {
		ids = append(ids, byMember[m.URL])
	}
	return ids
}

// TestRouterMetricsConformance runs the same strict exposition checker
// the server test uses against the router's AGGREGATED scrape: the
// fleet-summed families must still carry HELP/TYPE metadata, keep
// histogram bucket monotonicity and produce no duplicate series
// alongside the router's own registry.
func TestRouterMetricsConformance(t *testing.T) {
	f := newFleet(t, 2)
	ids := streamsPerMember(t, f)
	for step := 0; step < 5; step++ {
		doPush(t, f.front.URL, pushBody(step, ids...))
	}
	resp, err := http.Get(f.front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if errs := obs.Lint(bytes.NewReader(body)); len(errs) > 0 {
		for _, e := range errs {
			t.Error(e)
		}
		t.Fatalf("router /metrics fails exposition conformance:\n%s", body)
	}
	// The fleet-aggregated stage histogram must be present (labeled
	// samples used to be dropped by the aggregator).
	if !strings.Contains(string(body), `bagcpd_push_stage_seconds_count{stage="emd",statistic="kl"}`) {
		t.Errorf("aggregated scrape missing labeled stage histogram:\n%s", body)
	}
}

// TestRouterAggregatesLabeledSeries: two members running different
// statistics must keep DISTINCT statistic-labeled series on the
// router's aggregate page — summing by bare sample name would either
// drop them (the old aggregator skipped every labeled sample) or
// collapse kl and lr work into one meaningless number.
func TestRouterAggregatesLabeledSeries(t *testing.T) {
	f := newStatFleet(t, []string{"kl", "lr"})
	statByMember := map[string]string{f.members[0].URL: "kl", f.members[1].URL: "lr"}
	ids := streamsPerMember(t, f)
	for step := 0; step < 5; step++ {
		doPush(t, f.front.URL, pushBody(step, ids...))
	}
	resp, err := http.Get(f.front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, _ := io.ReadAll(resp.Body)
	text := string(blob)
	for _, stat := range statByMember {
		// Each member pushed 5 bags into its one stream; the per-statistic
		// emd stage count must survive aggregation with its label intact.
		want := `bagcpd_push_stage_seconds_count{stage="emd",statistic="` + stat + `"} 5`
		if !strings.Contains(text, want+"\n") {
			t.Errorf("aggregate missing %q in:\n%s", want, text)
		}
		if !strings.Contains(text, `bagcpd_engine_info{statistic="`+stat+`"} 1`) {
			t.Errorf("aggregate missing engine info for %s", stat)
		}
	}
	// Label-compatible series still SUM across members: each member
	// accepted 5 one-row sub-batches.
	if !strings.Contains(text, "bagcpd_push_batches_total 10\n") {
		t.Errorf("aggregate did not sum unlabeled member counters:\n%s", text)
	}
	if errs := obs.Lint(bytes.NewReader(blob)); len(errs) > 0 {
		t.Errorf("mixed-statistic aggregate fails lint: %v", errs)
	}
}

// TestRouterTracePropagation: the router mints a trace ID when the
// client sends none (or propagates the client's), members echo it in
// every result row, and router-synthesized error rows for a dead member
// carry it too.
func TestRouterTracePropagation(t *testing.T) {
	f := newFleet(t, 2)
	ids := streamsPerMember(t, f)

	// No client trace: the router mints one and hands it back.
	resp, err := http.Post(f.front.URL+"/v1/push", "application/x-ndjson",
		strings.NewReader(pushBody(0, ids...)))
	if err != nil {
		t.Fatal(err)
	}
	minted := resp.Header.Get(obs.TraceHeader)
	if minted == "" {
		t.Fatal("router did not mint a trace ID")
	}
	sc := bufio.NewScanner(resp.Body)
	rows := 0
	for sc.Scan() {
		rows++
		if !strings.Contains(sc.Text(), `"trace":"`+minted+`"`) {
			t.Errorf("row missing minted trace %q: %s", minted, sc.Text())
		}
	}
	resp.Body.Close()
	if rows != len(ids) {
		t.Fatalf("got %d rows, want %d", rows, len(ids))
	}

	// Client-supplied trace wins over minting.
	req, _ := http.NewRequest("POST", f.front.URL+"/v1/push", strings.NewReader(pushBody(1, ids...)))
	req.Header.Set(obs.TraceHeader, "cafebabe03")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if got := resp2.Header.Get(obs.TraceHeader); got != "cafebabe03" {
		t.Errorf("response trace = %q, want cafebabe03", got)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(blob)), "\n") {
		if !strings.Contains(line, `"trace":"cafebabe03"`) {
			t.Errorf("row missing client trace: %s", line)
		}
	}

	// A dead member degrades to router-synthesized error rows — those
	// must carry the trace too.
	f.members[0].Close()
	req3, _ := http.NewRequest("POST", f.front.URL+"/v1/push", strings.NewReader(pushBody(2, ids...)))
	req3.Header.Set(obs.TraceHeader, "feedbead04")
	resp3, err := http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	blob3, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	sawError := false
	for _, line := range strings.Split(strings.TrimSpace(string(blob3)), "\n") {
		if strings.Contains(line, `"error"`) {
			sawError = true
		}
		if !strings.Contains(line, `"trace":"feedbead04"`) {
			t.Errorf("row missing trace after member death: %s", line)
		}
	}
	if !sawError {
		t.Fatalf("no error rows despite dead member:\n%s", blob3)
	}
}
