// Package router is the cluster front tier over a fleet of bagcpd
// -serve instances: the paper's detector is per-stream, so the workload
// shards perfectly — the router consistent-hashes stream ids over a
// static member list, forwards NDJSON push batches to the owning
// instances, and migrates LIVE streams between members without losing
// or recomputing a single score (the members' snapshot envelopes are
// bit-identical state, so a moved stream's future output is exactly
// what it would have been had it never moved).
//
// Endpoints:
//
//	POST /v1/push      NDJSON rows exactly as the member API: the router
//	                   validates rows, splits the batch into per-member
//	                   sub-batches (preserving per-stream order), forwards
//	                   them concurrently, and streams back one result row
//	                   per input row IN INPUT ORDER. If any owning member
//	                   answers 429 the router answers 429 with Retry-After
//	                   taken from the slowest member; see the wire-format
//	                   notes below.
//	GET  /v1/streams   the fleet's open streams, aggregated across all
//	                   members; each row gains a "member" field.
//	GET  /v1/streams/{id}/stats
//	                   per-stream introspection (bag clock, window fill,
//	                   last inspection, per-stage costs), proxied to the
//	                   member that currently owns the stream.
//	POST /v1/migrate   {"streams": [...], "target": member}: live
//	                   migration — quiesce routing, extract the streams'
//	                   state from their current owners, adopt on the
//	                   target, flip the routing table, resume.
//	GET  /v1/members   member list with ring ownership share and a live
//	                   health probe.
//	GET  /metrics      router counters plus fleet-aggregated member
//	                   counters (summed across reachable members).
//	GET  /healthz      liveness probe (of the router itself).
//
// Wire-format guarantees for /v1/push:
//
//   - The response carries exactly one NDJSON row per input row, in input
//     order, whatever members the rows fanned out to.
//   - Rows of one stream are applied in input order (they form one
//     sub-batch to one member, and members preserve batch order).
//   - On 429, Retry-After is the MAXIMUM Retry-After among the refusing
//     members — the slowest member sets the pace, so a client that obeys
//     it will not immediately re-trip the same member. The body still
//     carries the full per-row result set: rows with results WERE applied
//     by their members and must not be re-sent; rows with a "member ...
//     busy" error were NOT applied and are safe to retry. Clients that
//     need all-or-nothing batches should keep each batch to a single
//     stream.
//   - A member that is down (connection refused, timeout, non-push
//     status) fails only ITS rows: each gets an "error" row naming the
//     member, the rest of the batch proceeds. The batch status stays 200;
//     per-row errors are the member API's error contract too.
package router

import (
	"bufio"
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/bag"
	"repro/internal/core"
	"repro/internal/obs"
)

// Config parameterizes a Router.
type Config struct {
	// Members are the bagcpd -serve base URLs the router fronts (e.g.
	// "http://10.0.0.1:8080"; a bare host:port gets "http://"). Required,
	// static for the router's lifetime: membership changes are a restart
	// (the hash ring is a pure function of this list, so a rolling
	// restart of routers agrees on ownership at every step).
	Members []string
	// Replicas is the virtual-node count per member on the hash ring.
	// 0 selects the default (64).
	Replicas int
	// Client issues the forwarded requests. nil selects a client with a
	// 60s timeout.
	Client *http.Client
	// MaxBatchBytes bounds one push request's body, exactly like the
	// member server's knob. 0 selects the member default.
	MaxBatchBytes int64
	// Logger receives the router's structured operational records
	// (migration spans, member failures, per-batch debug lines). nil
	// discards them.
	Logger *slog.Logger
}

// DefaultMemberTimeout bounds each forwarded request when Config.Client
// is nil.
const DefaultMemberTimeout = 60 * time.Second

// Router is the consistent-hash stream router. Create with New, mount
// as an http.Handler.
type Router struct {
	cfg     Config
	ring    *ring
	members []string // normalized, sorted
	mux     *http.ServeMux
	client  *http.Client
	met     routerMetrics
	log     *slog.Logger

	// state is the push/migration phase lock: pushes hold it shared,
	// migration exclusively — so a migrating stream can have no push in
	// flight through this router between its extract and its adopt.
	state sync.RWMutex

	// mu guards overrides: stream id -> member, for streams migrated off
	// their ring owner.
	mu        sync.Mutex
	overrides map[string]string
}

// New validates cfg and returns a ready Router.
func New(cfg Config) (*Router, error) {
	members := make([]string, 0, len(cfg.Members))
	for _, m := range cfg.Members {
		n, err := normalizeMember(m)
		if err != nil {
			return nil, err
		}
		members = append(members, n)
	}
	sort.Strings(members)
	ring, err := newRing(members, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: DefaultMemberTimeout}
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	r := &Router{
		cfg:       cfg,
		ring:      ring,
		members:   members,
		mux:       http.NewServeMux(),
		client:    client,
		met:       newRouterMetrics(),
		log:       logger,
		overrides: make(map[string]string),
	}
	r.mux.HandleFunc("POST /v1/push", r.handlePush)
	r.mux.HandleFunc("GET /v1/streams", r.handleStreams)
	r.mux.HandleFunc("GET /v1/streams/{id}/stats", r.handleStreamStats)
	r.mux.HandleFunc("POST /v1/migrate", r.handleMigrate)
	r.mux.HandleFunc("GET /v1/members", r.handleMembers)
	r.mux.HandleFunc("GET /metrics", r.handleMetrics)
	r.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return r, nil
}

func normalizeMember(m string) (string, error) {
	m = strings.TrimRight(strings.TrimSpace(m), "/")
	if m == "" {
		return "", fmt.Errorf("router: empty member address")
	}
	if !strings.Contains(m, "://") {
		m = "http://" + m
	}
	if !strings.HasPrefix(m, "http://") && !strings.HasPrefix(m, "https://") {
		return "", fmt.Errorf("router: member %q: only http(s) members are supported", m)
	}
	return m, nil
}

// ServeHTTP implements http.Handler.
func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) { r.mux.ServeHTTP(w, req) }

// Owner returns the member currently routing stream id: the migration
// override when one is set, the hash-ring owner otherwise.
func (r *Router) Owner(id string) string {
	r.mu.Lock()
	m, ok := r.overrides[id]
	r.mu.Unlock()
	if ok {
		return m
	}
	return r.ring.owner(id)
}

// Members returns the normalized member list.
func (r *Router) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// pushRow is the subset of a push row the router needs to route and
// validate it; the raw line is forwarded verbatim so members see exactly
// what the client sent.
type pushRow struct {
	Stream string      `json:"stream"`
	Bag    [][]float64 `json:"bag"`
}

// errorRow is a router-synthesized NDJSON result row. It carries the
// batch trace like member-produced rows do, so a client can correlate
// partial failures with the router's log records.
type errorRow struct {
	Stream string `json:"stream"`
	Error  string `json:"error"`
	Trace  string `json:"trace,omitempty"`
}

func marshalErrorRow(stream, msg, trace string) []byte {
	b, _ := json.Marshal(errorRow{Stream: stream, Error: msg, Trace: trace})
	return b
}

// mintTrace draws a fresh 8-byte hex trace ID for a push batch that
// arrived without one.
func mintTrace() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand does not fail on supported platforms; a fixed
		// sentinel keeps the batch traceable even if it somehow does.
		return "trace-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// memberBatch is one member's slice of a push batch.
type memberBatch struct {
	member string
	rows   []int // input row indices, in input order
	body   bytes.Buffer

	lines      [][]byte // per-row response lines, parallel to rows
	busy       bool     // member answered 429
	retryAfter int      // its Retry-After seconds
}

func (r *Router) handlePush(w http.ResponseWriter, req *http.Request) {
	r.state.RLock()
	defer r.state.RUnlock()

	// Correlate the batch across the fleet: propagate the caller's trace
	// ID or mint one, forward it to every owning member (which echoes it
	// in each result row), and hand it back in the response header.
	start := time.Now()
	trace := req.Header.Get(obs.TraceHeader)
	if trace == "" {
		trace = mintTrace()
	}

	maxBytes := r.cfg.MaxBatchBytes
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	req.Body = http.MaxBytesReader(w, req.Body, maxBytes)

	// Parse and validate the whole batch up front, like the member
	// server: a malformed line rejects the request before ANY sub-batch
	// is forwarded, so a 400 always means "nothing was applied".
	var (
		lines   [][]byte // raw row lines, in input order
		streams []string // per-row stream id
	)
	sc := bufio.NewScanner(req.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var row pushRow
		if err := json.Unmarshal([]byte(text), &row); err != nil {
			httpRowError(w, sc, lineNo, err)
			return
		}
		if row.Stream == "" {
			httpRowError(w, sc, lineNo, errors.New("missing stream id"))
			return
		}
		if len(row.Bag) == 0 {
			httpRowError(w, sc, lineNo, errors.New("empty bag"))
			return
		}
		if err := (bag.Bag{Points: row.Bag}).Validate(); err != nil {
			httpRowError(w, sc, lineNo, err)
			return
		}
		lines = append(lines, []byte(text))
		streams = append(streams, row.Stream)
	}
	if err := sc.Err(); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("batch exceeds %d bytes", maxBytes), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, fmt.Sprintf("reading body: %v", err), http.StatusBadRequest)
		return
	}
	if len(lines) == 0 {
		http.Error(w, "empty batch", http.StatusBadRequest)
		return
	}

	// Deal rows to their owning members, preserving input order inside
	// each sub-batch (and therefore per-stream order: a stream's rows all
	// go to one member).
	index := make(map[string]*memberBatch)
	var batches []*memberBatch
	for i, line := range lines {
		owner := r.Owner(streams[i])
		mb, ok := index[owner]
		if !ok {
			mb = &memberBatch{member: owner}
			index[owner] = mb
			batches = append(batches, mb)
		}
		mb.rows = append(mb.rows, i)
		mb.body.Write(line)
		mb.body.WriteByte('\n')
	}

	// Forward the sub-batches concurrently and collect per-row result
	// lines. Member failures degrade to per-row error rows; 429s are
	// collected and propagated batch-wide below.
	var wg sync.WaitGroup
	for _, mb := range batches {
		wg.Add(1)
		go func(mb *memberBatch) {
			defer wg.Done()
			r.forward(mb, streams, trace)
		}(mb)
	}
	wg.Wait()

	r.met.pushBatches.Inc()
	r.met.pushRows.Add(uint64(len(lines)))
	r.met.forwarded.Add(uint64(len(batches)))

	// Reassemble into input order.
	out := make([][]byte, len(lines))
	busy := false
	retryAfter := 0
	for _, mb := range batches {
		if mb.busy {
			busy = true
			if mb.retryAfter > retryAfter {
				retryAfter = mb.retryAfter
			}
		}
		for k, i := range mb.rows {
			out[i] = mb.lines[k]
		}
	}
	w.Header().Set(obs.TraceHeader, trace)
	if busy {
		// Retry-After from the slowest member: the batch must wait for
		// the most overloaded instance before a retry can fully apply.
		r.met.rejected.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusTooManyRequests)
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	bw := bufio.NewWriter(w)
	for _, line := range out {
		bw.Write(line)
		bw.WriteByte('\n')
	}
	bw.Flush()
	r.log.Debug("push batch routed",
		"trace", trace, "rows", len(lines), "members", len(batches),
		"busy", busy, "duration", time.Since(start))
}

func httpRowError(w http.ResponseWriter, sc *bufio.Scanner, line int, err error) {
	if scErr := sc.Err(); scErr != nil {
		http.Error(w, fmt.Sprintf("reading body: %v", scErr), http.StatusBadRequest)
		return
	}
	http.Error(w, fmt.Sprintf("line %d: %v", line, err), http.StatusBadRequest)
}

// forward ships one member's sub-batch — carrying the batch trace in
// the push header — and fills mb.lines with exactly one response line
// per row.
func (r *Router) forward(mb *memberBatch, streams []string, trace string) {
	mb.lines = make([][]byte, len(mb.rows))
	fail := func(msg string) {
		r.met.memberErrors.Inc()
		r.log.Warn("member push failed",
			"member", mb.member, "rows", len(mb.rows), "trace", trace, "error", msg)
		for k, i := range mb.rows {
			mb.lines[k] = marshalErrorRow(streams[i], fmt.Sprintf("member %s: %s", mb.member, msg), trace)
		}
	}
	req, err := http.NewRequest(http.MethodPost, mb.member+"/v1/push", bytes.NewReader(mb.body.Bytes()))
	if err != nil {
		fail(fmt.Sprintf("building request: %v", err))
		return
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	req.Header.Set(obs.TraceHeader, trace)
	resp, err := r.client.Do(req)
	if err != nil {
		fail(fmt.Sprintf("unreachable: %v", err))
		return
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
		k := 0
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			if k < len(mb.rows) {
				mb.lines[k] = append([]byte(nil), line...)
			}
			k++
		}
		if err := sc.Err(); err != nil || k != len(mb.rows) {
			// A short or broken response leaves unknown row outcomes;
			// report that honestly instead of inventing results.
			fail(fmt.Sprintf("returned %d result rows for %d pushed (read error: %v)", k, len(mb.rows), err))
		}
	case http.StatusTooManyRequests:
		io.Copy(io.Discard, resp.Body)
		mb.busy = true
		mb.retryAfter = 1
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
			mb.retryAfter = ra
		}
		for k, i := range mb.rows {
			mb.lines[k] = marshalErrorRow(streams[i], fmt.Sprintf("member %s busy (429, retry after %ds); rows NOT applied", mb.member, mb.retryAfter), trace)
		}
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		fail(fmt.Sprintf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(msg))))
	}
}

// fleetStream is one row of the aggregated GET /v1/streams.
type fleetStream struct {
	ID          string  `json:"id"`
	Pushed      int     `json:"pushed"`
	IdleSeconds float64 `json:"idle_seconds"`
	Member      string  `json:"member"`
}

func (r *Router) handleStreams(w http.ResponseWriter, _ *http.Request) {
	r.state.RLock()
	defer r.state.RUnlock()
	type memberResult struct {
		member  string
		streams []fleetStream
		err     error
	}
	results := make([]memberResult, len(r.members))
	var wg sync.WaitGroup
	for i, m := range r.members {
		wg.Add(1)
		go func(i int, m string) {
			defer wg.Done()
			results[i].member = m
			var listing struct {
				Streams []fleetStream `json:"streams"`
			}
			err := r.getJSON(m+"/v1/streams", &listing)
			if err != nil {
				results[i].err = err
				return
			}
			for k := range listing.Streams {
				listing.Streams[k].Member = m
			}
			results[i].streams = listing.Streams
		}(i, m)
	}
	wg.Wait()

	var all []fleetStream
	var unreachable []string
	for _, res := range results {
		if res.err != nil {
			r.met.memberErrors.Inc()
			r.log.Warn("member streams listing failed", "member", res.member, "error", res.err)
			unreachable = append(unreachable, res.member)
			continue
		}
		all = append(all, res.streams...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	out := map[string]any{"streams": all}
	if len(unreachable) > 0 {
		out["unreachable"] = unreachable
	}
	writeJSON(w, out)
}

// handleStreamStats proxies the per-stream introspection endpoint to
// the member that currently owns the stream, so an operator can inspect
// any stream through the front tier without knowing the ring.
func (r *Router) handleStreamStats(w http.ResponseWriter, req *http.Request) {
	r.state.RLock()
	defer r.state.RUnlock()
	id := req.PathValue("id")
	owner := r.Owner(id)
	resp, err := r.client.Get(owner + "/v1/streams/" + url.PathEscape(id) + "/stats")
	if err != nil {
		r.met.memberErrors.Inc()
		r.log.Warn("member stats proxy failed", "member", owner, "stream", id, "error", err)
		http.Error(w, fmt.Sprintf("member %s unreachable: %v", owner, err), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// migrateRequest is the body of POST /v1/migrate.
type migrateRequest struct {
	Streams []string `json:"streams"`
	Target  string   `json:"target"`
}

// handleMigrate moves live streams between members: quiesce pushes
// (exclusive phase lock), extract each stream's state from its current
// owner, adopt it on the target, flip the routing override, resume. The
// per-member snapshot envelope is bit-identical state, so the move is
// invisible in the scores. Streams are processed grouped by source
// member; a failure rolls the in-flight group back onto its source and
// reports what DID move, so the fleet is never left with a stream in
// zero or two places.
func (r *Router) handleMigrate(w http.ResponseWriter, req *http.Request) {
	var mr migrateRequest
	if err := json.NewDecoder(req.Body).Decode(&mr); err != nil {
		http.Error(w, fmt.Sprintf("decoding migrate request: %v", err), http.StatusBadRequest)
		return
	}
	if len(mr.Streams) == 0 {
		http.Error(w, "migrate request names no streams", http.StatusBadRequest)
		return
	}
	target, err := normalizeMember(mr.Target)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if !r.isMember(target) {
		http.Error(w, fmt.Sprintf("target %q is not a member", target), http.StatusBadRequest)
		return
	}

	// Quiesce: no push can be in flight through this router while
	// ownership moves. (Members still drain their OWN in-flight batches
	// under their phase lock when /v1/streams/extract runs.)
	r.state.Lock()
	defer r.state.Unlock()

	// Validate the id list before consulting ownership, so a malformed
	// request is always a 400 regardless of where its streams hash.
	seen := make(map[string]bool, len(mr.Streams))
	for _, id := range mr.Streams {
		if id == "" {
			http.Error(w, "empty stream id", http.StatusBadRequest)
			return
		}
		if seen[id] {
			http.Error(w, fmt.Sprintf("stream %q named twice", id), http.StatusBadRequest)
			return
		}
		seen[id] = true
	}

	// Group the streams by their current owner.
	bySource := make(map[string][]string)
	var sources []string
	for _, id := range mr.Streams {
		owner := r.Owner(id)
		if owner == target {
			http.Error(w, fmt.Sprintf("stream %q already routes to %s", id, target), http.StatusConflict)
			return
		}
		if _, ok := bySource[owner]; !ok {
			sources = append(sources, owner)
		}
		bySource[owner] = append(bySource[owner], id)
	}

	start := time.Now()
	var migrated []string
	for _, source := range sources {
		ids := bySource[source]
		groupStart := time.Now()
		env, err := r.extract(source, ids)
		if err != nil {
			r.log.Error("migration extract failed",
				"source", source, "target", target, "streams", len(ids), "error", err)
			r.migrateError(w, http.StatusBadGateway, migrated,
				fmt.Errorf("extract %v from %s: %w (streams still on %s)", ids, source, err, source), nil)
			return
		}
		if err := r.adopt(target, env); err != nil {
			// The source no longer has the streams and the target refused
			// them: put them back where they came from. If even that
			// fails, the envelope in the error response is the only copy
			// of the stream state — surface it rather than lose it.
			if rbErr := r.adopt(source, env); rbErr != nil {
				r.met.migrateFailures.Inc()
				r.log.Error("migration adopt and rollback failed; envelope orphaned",
					"source", source, "target", target, "streams", len(ids),
					"adopt_error", err, "rollback_error", rbErr)
				r.migrateError(w, http.StatusInternalServerError, migrated,
					fmt.Errorf("adopt %v on %s failed (%v) AND rollback onto %s failed (%v); envelope attached", ids, target, err, source, rbErr), env)
				return
			}
			r.met.migrateFailures.Inc()
			r.log.Error("migration adopt failed, rolled back onto source",
				"source", source, "target", target, "streams", len(ids), "error", err)
			r.migrateError(w, http.StatusConflict, migrated,
				fmt.Errorf("adopt %v on %s: %w (rolled back onto %s)", ids, target, err, source), nil)
			return
		}
		// Flip routing for this group. An override that matches the ring
		// owner is dropped — the ring already says so.
		r.mu.Lock()
		for _, id := range ids {
			if r.ring.owner(id) == target {
				delete(r.overrides, id)
			} else {
				r.overrides[id] = target
			}
		}
		r.mu.Unlock()
		migrated = append(migrated, ids...)
		r.met.migrations.Add(uint64(len(ids)))
		r.log.Info("migration group moved",
			"source", source, "target", target, "streams", len(ids),
			"duration", time.Since(groupStart))
	}
	sort.Strings(migrated)
	r.log.Info("migration complete",
		"target", target, "streams", len(migrated), "sources", len(sources),
		"duration", time.Since(start))
	writeJSON(w, map[string]any{"migrated": migrated, "target": target})
}

// migrateError reports a failed migration, naming the streams that DID
// move before the failure and, when the state could not be parked on any
// member, the orphaned envelope itself.
func (r *Router) migrateError(w http.ResponseWriter, status int, migrated []string, err error, orphan *core.EngineSnapshot) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	out := map[string]any{"error": err.Error()}
	if len(migrated) > 0 {
		sort.Strings(migrated)
		out["migrated"] = migrated
	}
	if orphan != nil {
		out["orphaned_envelope"] = orphan
	}
	json.NewEncoder(w).Encode(out)
}

func (r *Router) isMember(m string) bool {
	for _, have := range r.members {
		if have == m {
			return true
		}
	}
	return false
}

// extract pulls the named streams' state off source (closing them
// there).
func (r *Router) extract(source string, ids []string) (*core.EngineSnapshot, error) {
	body, _ := json.Marshal(map[string]any{"streams": ids})
	resp, err := r.client.Post(source+"/v1/streams/extract", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	var env core.EngineSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return nil, fmt.Errorf("decoding envelope: %w", err)
	}
	return &env, nil
}

// adopt merges an envelope's streams into member m.
func (r *Router) adopt(m string, env *core.EngineSnapshot) error {
	body, err := json.Marshal(env)
	if err != nil {
		return err
	}
	resp, err := r.client.Post(m+"/v1/streams/adopt", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// memberInfo is one row of GET /v1/members.
type memberInfo struct {
	Member string `json:"member"`
	Up     bool   `json:"up"`
	// Overrides is how many streams route here against the ring (in from
	// migrations), informational for rebalancing tools.
	Overrides int `json:"overrides"`
}

func (r *Router) handleMembers(w http.ResponseWriter, _ *http.Request) {
	infos := make([]memberInfo, len(r.members))
	var wg sync.WaitGroup
	for i, m := range r.members {
		wg.Add(1)
		go func(i int, m string) {
			defer wg.Done()
			infos[i] = memberInfo{Member: m, Up: r.probe(m)}
		}(i, m)
	}
	wg.Wait()
	r.mu.Lock()
	for i := range infos {
		n := 0
		for _, m := range r.overrides {
			if m == infos[i].Member {
				n++
			}
		}
		infos[i].Overrides = n
	}
	r.mu.Unlock()
	writeJSON(w, map[string]any{"members": infos})
}

// probe checks a member's liveness.
func (r *Router) probe(m string) bool {
	resp, err := r.client.Get(m + "/healthz")
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func (r *Router) getJSON(url string, v any) error {
	resp, err := r.client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
