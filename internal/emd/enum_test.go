package emd

import (
	"math"
	"math/bits"
	"testing"

	"repro/internal/signature"
)

// Exhaustive small-instance conformance: every signature shape with
// m, n <= 4 over a small weight grid, checked against a brute-force
// enumeration of ALL basic feasible solutions of the transportation
// polytope. The optimum of a (balanced) transportation LP is attained
// at a vertex, and every vertex is a spanning-tree basis, so
// enumerating the spanning bases and taking the cheapest feasible one
// is an exact, solver-independent oracle. The weight/center grids are
// chosen to be maximally degenerate — repeated weights, equidistant and
// coincident centers — because ties in θ and in the reduced costs are
// precisely what random fuzzing almost never hits and what a
// pricing/pivot rework can silently get wrong.

// bruteForceTransport returns the minimum cost over all basic feasible
// solutions of the balanced transportation problem, enumerating every
// spanning-tree cell subset (Gosper's hack over the <= 16-cell grid).
// ok is false when no feasible basis exists (malformed input).
func bruteForceTransport(supply, demand []float64, cost [][]float64) (best float64, ok bool) {
	m, n := len(supply), len(demand)
	cells := m * n
	if cells > 20 {
		panic("bruteForceTransport: instance too large to enumerate")
	}
	nb := m + n - 1
	best = math.Inf(1)

	var flow [20]float64
	var ra [8]float64
	var rb [8]float64
	var rowCnt, colCnt [8]int
	var cellOf [20]int // packed list of the subset's cells
	var done [20]bool

	last := uint32(1) << cells
	for mask := (uint32(1) << nb) - 1; mask < last; {
		// Tree-solve the subset by repeated leaf elimination.
		for i := 0; i < m; i++ {
			ra[i] = supply[i]
			rowCnt[i] = 0
		}
		for j := 0; j < n; j++ {
			rb[j] = demand[j]
			colCnt[j] = 0
		}
		cnt := 0
		for c := mask; c != 0; c &= c - 1 {
			cell := bits.TrailingZeros32(c)
			cellOf[cnt] = cell
			done[cnt] = false
			rowCnt[cell/n]++
			colCnt[cell%n]++
			cnt++
		}
		feasible := true
		totalCost := 0.0
		for solved := 0; solved < cnt; {
			progressed := false
			for p := 0; p < cnt && feasible; p++ {
				if done[p] {
					continue
				}
				cell := cellOf[p]
				i, j := cell/n, cell%n
				var f float64
				switch {
				case rowCnt[i] == 1:
					f = ra[i]
				case colCnt[j] == 1:
					f = rb[j]
				default:
					continue
				}
				if f < -1e-9 {
					feasible = false
					break
				}
				if f < 0 {
					f = 0
				}
				flow[p] = f
				ra[i] -= f
				rb[j] -= f
				rowCnt[i]--
				colCnt[j]--
				done[p] = true
				solved++
				progressed = true
			}
			if !feasible || !progressed {
				// A stall means the subset has a cycle or misses a
				// row/column: not a spanning basis.
				feasible = false
				break
			}
		}
		if feasible {
			for i := 0; i < m; i++ {
				if math.Abs(ra[i]) > 1e-7 {
					feasible = false
				}
			}
			for j := 0; j < n; j++ {
				if math.Abs(rb[j]) > 1e-7 {
					feasible = false
				}
			}
		}
		if feasible {
			for p := 0; p < cnt; p++ {
				totalCost += flow[p] * cost[cellOf[p]/n][cellOf[p]%n]
			}
			if totalCost < best {
				best = totalCost
				ok = true
			}
		}
		// Gosper's hack: next subset with the same popcount.
		c := mask & (^mask + 1)
		r := mask + c
		if r >= last {
			break
		}
		mask = (((r ^ mask) >> 2) / c) | r
	}
	return best, ok
}

// bruteEMD mirrors the production pipeline around the brute-force
// oracle: zero-weight filtering, dummy balancing, cost division by the
// moved amount.
func bruteEMD(t *testing.T, s, u signature.Signature, g Ground) float64 {
	t.Helper()
	if g == nil {
		g = Euclidean
	}
	var sc, tc [][]float64
	var sw, tw []float64
	for i, w := range s.Weights {
		if w > 0 {
			sc = append(sc, s.Centers[i])
			sw = append(sw, w)
		}
	}
	for i, w := range u.Weights {
		if w > 0 {
			tc = append(tc, u.Centers[i])
			tw = append(tw, w)
		}
	}
	m, n := len(sw), len(tw)
	totS, totT := 0.0, 0.0
	for _, w := range sw {
		totS += w
	}
	for _, w := range tw {
		totT += w
	}
	cost := make([][]float64, m)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			cost[i][j] = g(sc[i], tc[j])
		}
	}
	supply := append([]float64(nil), sw...)
	demand := append([]float64(nil), tw...)
	diff := totS - totT
	const relTol = 1e-12
	if diff > relTol*math.Max(totS, totT) {
		demand = append(demand, diff)
		for i := range cost {
			cost[i] = append(cost[i], 0)
		}
	} else if -diff > relTol*math.Max(totS, totT) {
		supply = append(supply, -diff)
		cost = append(cost, make([]float64, n))
	} else if diff > 0 {
		demand[n-1] += diff
	} else if diff != 0 {
		supply[m-1] -= diff
	}
	want, ok := bruteForceTransport(supply, demand, cost)
	if !ok {
		t.Fatalf("brute force found no feasible basis (%dx%d)", len(supply), len(demand))
	}
	amount := math.Min(totS, totT)
	if amount <= 0 {
		return 0
	}
	return want / amount
}

// enumWeights fills w from a base-len(grid) counter so every weight
// combination is visited exactly once per shape.
func enumWeights(w []float64, grid []float64, combo int) int {
	for i := range w {
		w[i] = grid[combo%len(grid)]
		combo /= len(grid)
	}
	return combo
}

func TestExhaustiveSmallInstances(t *testing.T) {
	// Degenerate on purpose: repeated weights (equal θ candidates), a
	// zero to exercise filtering, integer-grid centers (ties in the
	// cost matrix), and a coincident-center layout (zero costs).
	weightGrid := []float64{0, 0.75, 1.5}
	layouts := [][]float64{
		{0, 1, 2, 3},     // equidistant: maximal reduced-cost ties
		{0, 0, 1.5, 1.5}, // coincident pairs: zero-cost cells
	}
	classic := NewSolver(WithLargeThreshold(-1))
	forced := NewSolver()
	tiny := NewSolver(WithPricingBlock(1))

	instances := 0
	for m := 1; m <= 4; m++ {
		for n := 1; n <= 4; n++ {
			combos := 1
			for i := 0; i < m+n; i++ {
				combos *= len(weightGrid)
			}
			for combo := 0; combo < combos; combo++ {
				for li, layout := range layouts {
					sw := make([]float64, m)
					tw := make([]float64, n)
					rest := enumWeights(sw, weightGrid, combo)
					enumWeights(tw, weightGrid, rest)
					posS, posT := 0, 0
					totS, totT := 0.0, 0.0
					for _, w := range sw {
						if w > 0 {
							posS++
							totS += w
						}
					}
					for _, w := range tw {
						if w > 0 {
							posT++
							totT += w
						}
					}
					if posS == 0 || posT == 0 {
						continue // empty problem: rejected by Validate/prepare
					}
					if posS == 4 && posT == 4 && math.Abs(totS-totT) > 1e-12 {
						// 4×4 plus a dummy is 20 cells — past the
						// enumeration budget. Unbalance is covered by
						// every other shape.
						continue
					}
					s := signature.Signature{Weights: sw}
					u := signature.Signature{Weights: tw}
					for i := 0; i < m; i++ {
						s.Centers = append(s.Centers, []float64{layout[i]})
					}
					for j := 0; j < n; j++ {
						u.Centers = append(u.Centers, []float64{layout[(j+li)%len(layout)]})
					}
					// Manhattan pins the simplex (1-D Euclidean balanced
					// pairs would take the closed form instead).
					g := Manhattan

					want := bruteEMD(t, s, u, g)
					for name, sv := range map[string]*Solver{"classic": classic, "large": forced, "large/block=1": tiny} {
						var got float64
						var err error
						if name == "classic" {
							got, err = sv.Distance(s, u, g)
						} else {
							got, err = sv.DistanceLarge(s, u, g)
						}
						if err != nil {
							t.Fatalf("m=%d n=%d combo=%d layout=%d %s: %v", m, n, combo, li, name, err)
						}
						if math.Abs(got-want) > 1e-8*(1+want) {
							t.Fatalf("m=%d n=%d combo=%d layout=%d %s: got %.15g, brute-force optimum %.15g (sw=%v tw=%v)",
								m, n, combo, li, name, got, want, sw, tw)
						}
					}
					instances++
				}
			}
		}
	}
	if instances < 10000 {
		t.Fatalf("enumeration shrank to %d instances; the exhaustive guard lost its teeth", instances)
	}
}
