package emd

import (
	"math"
	"reflect"
	"sync/atomic"

	"repro/internal/signature"
)

// Ground-cost amortization across solves.
//
// The detector and the pairwise tiles are saturated with repeated cost
// structure: every Detector.Push solves τ+τ′−1 EMDs against the same
// incoming signature, histogram/grid builders emit signatures whose
// support sets are bit-identical across every bag, and a pairwise tile
// revisits the same ≤2T resident signatures O(T) times. The cost matrix
// depends only on the two support-point sets and the ground function —
// never on the weights — so once a (src support, dst support) pair has
// been priced, re-evaluating the ground distances is pure waste.
//
// A CostCache keys lazily-filled cost matrices on a content hash of the
// filtered support points (collision-checked by bitwise comparison, so a
// hash collision degrades to a miss, never a wrong matrix). Rows are
// stored at the granularity the solver computes them — whole rows on the
// classic path and on large-path block refills, single cells for the
// large path's NW-corner basis costs — so a warm re-solve of the same
// supports performs ZERO ground evaluations on either simplex path.
//
// The cache is bit-transparent: a stored value is the float the ground
// function returned, the solver replays the identical maxCost-tracking
// comparisons over served rows, and tolerance evolution therefore
// matches the uncached solve exactly. Cache on/off produces identical
// bits (property-tested and fuzzed), which is why the cache knob is NOT
// part of the engine snapshot fingerprint and must never bump
// core.SnapshotVersion.
//
// Correctness requires the ground function to be pure: identified by its
// code pointer (the same convention euclideanGround uses for dispatch),
// deterministic, and free of captured state that changes between calls.
// Attaching one solver+cache to closures that share a code pointer but
// differ in captured state is undefined; all repo consumers pass named
// package-level grounds.

// DefaultCostCacheSlots is the number of distinct support pairs a
// CostCache retains when constructed with NewCostCache(0). The detector
// window and a pairwise tile are dominated by one (histogram/grid) or a
// handful (mixed) of support sets; four slots cover those with LRU
// headroom while keeping the worst-case footprint at 4·K² floats.
const DefaultCostCacheSlots = 4

// costEntry is one cached cost matrix: the fingerprint and a bitwise
// copy of the supports it was computed from (collision check), plus the
// m0×n0 real-cell matrix with per-row / per-cell fill flags. Dummy
// rows/columns are NOT cached — their layout depends on the mass
// balance of the particular pair, and they are zero-cost anyway.
type costEntry struct {
	used bool
	hash uint64
	tick uint64 // LRU clock value of the last acquire

	m0, n0, dim int
	pts         []float64 // filtered supports, src then dst, flattened

	cost     []float64 // m0×n0 ground costs, row-major
	rowDone  []bool    // row fully computed and stored
	cellDone []bool    // individual cells stored via basis-cost lookups
}

// CostCacheStats are cumulative whole-matrix lookup counters (the
// per-row/per-cell traffic is on SolverStats instead).
type CostCacheStats struct {
	// Hits counts acquires that found the support pair cached.
	Hits uint64
	// Misses counts acquires that had to start a fresh entry.
	Misses uint64
	// Evictions counts misses that displaced a live entry (LRU).
	Evictions uint64
	// Collisions counts hash matches rejected by the bitwise support
	// comparison — the collision check working, not a fault.
	Collisions uint64
}

// CostCache is a small LRU of ground-cost matrices keyed on signature
// supports, shared by every solve of the Solver it is attached to
// (SetCostCache / WithCostCache / DistanceCached). A one-slot fast path
// covers the stable-support builders (histogram, grid) where every
// lookup hits the same entry; the LRU covers mixed workloads.
//
// A CostCache is not safe for concurrent use — like the Solver it is
// attached to, give each worker its own.
type CostCache struct {
	slots  []costEntry
	last   *costEntry // fast path: entry served by the previous acquire
	tick   uint64
	ground uintptr // code pointer of the ground the entries were built with
	stats  CostCacheStats
}

// NewCostCache returns a cache holding up to slots distinct support
// pairs; slots <= 0 selects DefaultCostCacheSlots.
func NewCostCache(slots int) *CostCache {
	if slots <= 0 {
		slots = DefaultCostCacheSlots
	}
	return &CostCache{slots: make([]costEntry, slots)}
}

// Stats returns the cumulative lookup counters.
func (c *CostCache) Stats() CostCacheStats { return c.stats }

// Slots returns the cache capacity in support pairs.
func (c *CostCache) Slots() int { return len(c.slots) }

// Prewarm grows every slot's buffers to hold signatures of up to k
// support points with dim-dimensional centers, so a fresh solver's first
// DistanceCached call stores its matrix without allocating. Solver.Prewarm
// calls this with dim = 3 for an attached cache; workloads with
// higher-dimensional centers should Prewarm the cache directly.
//
// A live entry whose buffers must be reallocated to reach the new size
// is dropped (grow* hands back fresh zeroed memory, not a copy), so a
// post-use Prewarm to a larger k degrades warm entries to misses — it
// never serves zeroed costs as if they were priced.
func (c *CostCache) Prewarm(k, dim int) {
	if k <= 0 || dim <= 0 {
		return
	}
	for i := range c.slots {
		e := &c.slots[i]
		grown := cap(e.pts) < 2*k*dim || cap(e.cost) < k*k ||
			cap(e.rowDone) < k || cap(e.cellDone) < k*k
		e.pts = growFloats(e.pts, 2*k*dim)
		e.cost = growFloats(e.cost, k*k)
		e.rowDone = growBools(e.rowDone, k)
		e.cellDone = growBools(e.cellDone, k*k)
		switch {
		case e.used && grown:
			// Reallocation zeroed the entry's contents: rowDone/cellDone
			// would still claim rows are priced while cost is all zeros.
			// Invalidate rather than corrupt.
			e.used = false
			if c.last == e {
				c.last = nil
			}
		case e.used:
			// Re-expose the live entry's views (grow* reslices).
			e.pts = e.pts[:(e.m0+e.n0)*e.dim]
			e.cost = e.cost[:e.m0*e.n0]
			e.rowDone = e.rowDone[:e.m0]
			e.cellDone = e.cellDone[:e.m0*e.n0]
		}
	}
}

// flush drops every entry (buffers are kept for reuse). Called when the
// ground function changes: entries computed under another ground are
// wrong for this one.
func (c *CostCache) flush() {
	for i := range c.slots {
		c.slots[i].used = false
	}
	c.last = nil
}

// acquire returns the entry for the filtered support pair, creating (and
// LRU-evicting) one on a miss. srcIdx/dstIdx select the >0-weight
// centers of s and t, exactly as staged by the solver. The returned
// entry's rowDone/cellDone flags say which parts are already priced.
func (c *CostCache) acquire(s, t signature.Signature, srcIdx, dstIdx []int, dim int, gp uintptr) *costEntry {
	if gp != c.ground {
		c.flush()
		c.ground = gp
	}
	m0, n0 := len(srcIdx), len(dstIdx)
	h := supportHash(s, t, srcIdx, dstIdx, dim)
	c.tick++

	// One-slot fast path: stable-support builders hit the same entry on
	// every acquire, skipping the slot scan entirely.
	if e := c.last; e != nil && e.used && e.hash == h && e.matches(s, t, srcIdx, dstIdx, dim) {
		e.tick = c.tick
		c.stats.Hits++
		return e
	}
	var victim *costEntry
	for i := range c.slots {
		e := &c.slots[i]
		if e.used && e.hash == h {
			if e.matches(s, t, srcIdx, dstIdx, dim) {
				e.tick = c.tick
				c.last = e
				c.stats.Hits++
				return e
			}
			c.stats.Collisions++
		}
		if victim == nil || (victim.used && (!e.used || e.tick < victim.tick)) {
			victim = e
		}
	}

	// Miss: rebuild the LRU victim in place, reusing its buffers.
	c.stats.Misses++
	if victim.used {
		c.stats.Evictions++
	}
	victim.used = true
	victim.hash = h
	victim.tick = c.tick
	victim.m0, victim.n0, victim.dim = m0, n0, dim
	victim.pts = growFloats(victim.pts, (m0+n0)*dim)
	p := 0
	for _, si := range srcIdx {
		p += copy(victim.pts[p:], s.Centers[si])
	}
	for _, dj := range dstIdx {
		p += copy(victim.pts[p:], t.Centers[dj])
	}
	victim.cost = growFloats(victim.cost, m0*n0)
	victim.rowDone = growBools(victim.rowDone, m0)
	for i := range victim.rowDone {
		victim.rowDone[i] = false
	}
	victim.cellDone = growBools(victim.cellDone, m0*n0)
	for i := range victim.cellDone {
		victim.cellDone[i] = false
	}
	c.last = victim
	return victim
}

// matches reports whether the entry was built from exactly these
// supports, comparing every center coordinate bitwise. This is the
// collision check behind the hash: O((m0+n0)·dim) per lookup, against
// the O(m0·n0) matrix it guards.
func (e *costEntry) matches(s, t signature.Signature, srcIdx, dstIdx []int, dim int) bool {
	if e.m0 != len(srcIdx) || e.n0 != len(dstIdx) || e.dim != dim {
		return false
	}
	p := 0
	for _, si := range srcIdx {
		for _, x := range s.Centers[si] {
			if math.Float64bits(e.pts[p]) != math.Float64bits(x) {
				return false
			}
			p++
		}
	}
	for _, dj := range dstIdx {
		for _, x := range t.Centers[dj] {
			if math.Float64bits(e.pts[p]) != math.Float64bits(x) {
				return false
			}
			p++
		}
	}
	return true
}

// supportHash is an FNV-1a content hash over the filtered support
// points (and the problem shape) of a pair. Cheap — one multiply and
// xor per coordinate — and only ever trusted together with the bitwise
// collision check in matches.
func supportHash(s, t signature.Signature, srcIdx, dstIdx []int, dim int) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(x uint64) {
		h ^= x
		h *= prime
	}
	mix(uint64(len(srcIdx))<<32 | uint64(len(dstIdx)))
	mix(uint64(dim))
	for _, si := range srcIdx {
		for _, x := range s.Centers[si] {
			mix(math.Float64bits(x))
		}
	}
	for _, dj := range dstIdx {
		for _, x := range t.Centers[dj] {
			mix(math.Float64bits(x))
		}
	}
	return h
}

// groundPtr identifies a ground function by its code pointer (nil is
// normalized to Euclidean before the cache sees it).
func groundPtr(g Ground) uintptr {
	return reflect.ValueOf(g).Pointer()
}

// --- Process-wide counters (served at /metrics) -----------------------------

var (
	groundEvalsTotal atomic.Uint64
	cacheHitsTotal   atomic.Uint64
	cacheMissesTotal atomic.Uint64
)

// GlobalStats returns the process-wide totals every solve publishes:
// ground-distance evaluations performed, and cost rows/cells served
// from (hits) or stored into (misses) cost caches. The server's
// /metrics endpoint exposes them as emd_ground_evals_total and
// emd_cost_cache_{hits,misses}_total.
func GlobalStats() (groundEvals, cacheHits, cacheMisses uint64) {
	return groundEvalsTotal.Load(), cacheHitsTotal.Load(), cacheMissesTotal.Load()
}

// publishStats flushes the per-solve counters into the process-wide
// totals. Called (deferred) by the public distance entry points; the >0
// guards keep the closed-form path free of atomic traffic.
func (sv *Solver) publishStats() {
	if sv.statGroundEvals > 0 {
		groundEvalsTotal.Add(uint64(sv.statGroundEvals))
	}
	if sv.statCacheHits > 0 {
		cacheHitsTotal.Add(uint64(sv.statCacheHits))
	}
	if sv.statCacheMisses > 0 {
		cacheMissesTotal.Add(uint64(sv.statCacheMisses))
	}
}
