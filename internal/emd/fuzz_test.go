package emd

import (
	"math"
	"testing"

	"repro/internal/randx"
	"repro/internal/signature"
)

// Differential fuzzing of the block-pricing solver rework. The fuzzers
// decode a compact parameter tuple into a random signature pair —
// K ∈ [1,64] per side, dimensions 1-3, optional zero-weight entries,
// RawMass on/off — and cross-check every solver entry point against the
// retained seed-reference simplex (referenceSolveTransport in
// solver_test.go), asserting optimal-cost equality within 1e-9 and the
// absence of panics. Run them continuously with:
//
//	go test -fuzz=FuzzSolverDistance ./internal/emd
//	go test -fuzz=FuzzDistance1D ./internal/emd
//
// The seed corpus lives in testdata/fuzz/<FuzzName>/ and is replayed by
// every plain `go test` run; CI additionally runs a short -fuzztime
// smoke so the mutation engine itself keeps working.

// fuzzSig decodes one side of a fuzz tuple into a valid signature:
// k entries (clamped into [1,64]), dim-dimensional centers, Gamma
// weights scaled to total, and zeroMask bits forcing individual weights
// to exactly zero (at least one entry is always kept positive so the
// transportation problem is non-empty).
func fuzzSig(rng *randx.RNG, k uint8, dim int, zeroMask uint16, total float64) signature.Signature {
	n := 1 + int(k)%64
	var s signature.Signature
	raw := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		s.Centers = append(s.Centers, rng.NormalVec(dim, 0, 3))
		raw[i] = rng.Gamma(1, 1) + 0.01
		if zeroMask&(1<<(i%16)) != 0 && i != 0 {
			raw[i] = 0
			continue
		}
		sum += raw[i]
	}
	for i := range raw {
		if raw[i] > 0 {
			raw[i] *= total / sum
		}
	}
	s.Weights = raw
	return s
}

func FuzzSolverDistance(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(12), uint8(2), uint16(0), false)
	f.Add(int64(2), uint8(63), uint8(63), uint8(2), uint16(0xF0F0), true)
	f.Add(int64(3), uint8(1), uint8(40), uint8(1), uint16(0), true)
	f.Add(int64(4), uint8(17), uint8(17), uint8(3), uint16(0x0001), false)
	f.Add(int64(5), uint8(2), uint8(2), uint8(1), uint16(0xFFFF), false)
	f.Add(int64(-9), uint8(32), uint8(5), uint8(2), uint16(0x1234), true)
	// Shapes chosen to stress the cached-solve differentials below:
	// dup/perm variants of near-square and lopsided instances.
	f.Add(int64(11), uint8(24), uint8(24), uint8(2), uint16(0x0F00), false)
	f.Add(int64(12), uint8(48), uint8(7), uint8(1), uint16(0), true)
	f.Fuzz(func(t *testing.T, seed int64, kS, kT, dim uint8, zeroMask uint16, rawMass bool) {
		rng := randx.New(seed)
		d := 1 + int(dim)%3
		totalS, totalT := 1.0, 1.0
		if rawMass {
			// Unbalanced totals: partial matching through the dummy node.
			totalS = 0.5 + 4*rng.Float64()
			totalT = 0.5 + 4*rng.Float64()
		}
		s := fuzzSig(rng, kS, d, zeroMask, totalS)
		u := fuzzSig(rng, kT, d, zeroMask>>3, totalT)
		// 1-D balanced Euclidean pairs would take the closed form, which
		// is a different algorithm with a looser (1e-7) contract; pin the
		// simplex with the Manhattan ground there so this fuzzer always
		// measures simplex-vs-simplex at 1e-9.
		g := Euclidean
		if d == 1 {
			g = Manhattan
		}

		want := referenceEMD(t, s, u, g)
		tol := 1e-9 * (1 + math.Abs(want))

		classic, err := NewSolver(WithLargeThreshold(-1)).Distance(s, u, g)
		if err != nil {
			t.Fatalf("classic solver: %v", err)
		}
		if math.Abs(classic-want) > tol {
			t.Fatalf("classic solver %.17g vs reference %.17g (Δ=%g)", classic, want, classic-want)
		}

		large, err := NewSolver().DistanceLarge(s, u, g)
		if err != nil {
			t.Fatalf("block-pricing solver: %v", err)
		}
		if math.Abs(large-want) > tol {
			t.Fatalf("block-pricing solver %.17g vs reference %.17g (Δ=%g)", large, want, large-want)
		}

		// Exotic pricing blocks must not change the optimum either.
		blocky, err := NewSolver(WithPricingBlock(1+int(kS)%7)).DistanceLarge(s, u, g)
		if err != nil {
			t.Fatalf("block-pricing solver (block=%d): %v", 1+int(kS)%7, err)
		}
		if math.Abs(blocky-want) > tol {
			t.Fatalf("block-pricing solver (block=%d) %.17g vs reference %.17g", 1+int(kS)%7, blocky, want)
		}

		// The pooled package-level entry point (auto dispatch) too.
		pkg, err := Distance(s, u, g)
		if err != nil {
			t.Fatalf("package Distance: %v", err)
		}
		if math.Abs(pkg-want) > tol {
			t.Fatalf("package Distance %.17g vs reference %.17g", pkg, want)
		}

		// Ground-cost caching must be bit-transparent on BOTH simplex
		// paths: solve each fuzzed pair twice on a cached solver — the
		// cold solve stores the cost matrix, the warm solve is served
		// entirely from it — and require exact equality with the
		// uncached value both times.
		cc := NewSolver(WithLargeThreshold(-1), WithCostCache(2))
		for pass := 0; pass < 2; pass++ {
			got, err := cc.DistanceCached(s, u, g)
			if err != nil {
				t.Fatalf("cached classic (pass %d): %v", pass, err)
			}
			if got != classic {
				t.Fatalf("cached classic (pass %d) %.17g != uncached %.17g (cache must be bit-transparent)", pass, got, classic)
			}
		}
		cl := NewSolver(WithLargeThreshold(1), WithCostCache(2))
		for pass := 0; pass < 2; pass++ {
			got, err := cl.DistanceCached(s, u, g)
			if err != nil {
				t.Fatalf("cached block-pricing (pass %d): %v", pass, err)
			}
			if got != large {
				t.Fatalf("cached block-pricing (pass %d) %.17g != uncached %.17g (cache must be bit-transparent)", pass, got, large)
			}
		}

		// Duplicated and permuted support points preserve the
		// mathematical EMD but exercise the cache fingerprint on
		// near-identical supports (a duplicated center must NOT be
		// confused with its original, a permutation must key its own
		// entry). Pivot order differs, so the check is against the
		// reference at tol — plus exact warm==cold on each variant.
		perm := signature.Signature{
			Centers: make([][]float64, len(s.Centers)),
			Weights: make([]float64, len(s.Weights)),
		}
		for i := range s.Centers {
			perm.Centers[len(s.Centers)-1-i] = s.Centers[i]
			perm.Weights[len(s.Weights)-1-i] = s.Weights[i]
		}
		dup := signature.Signature{ // split entry 0's mass across a duplicated center
			Centers: append([][]float64{s.Centers[0]}, s.Centers...),
			Weights: append([]float64{s.Weights[0] / 2}, s.Weights...),
		}
		dup.Weights[1] = s.Weights[0] - s.Weights[0]/2
		dp := NewSolver(WithCostCache(3))
		for _, v := range []struct {
			name string
			sig  signature.Signature
		}{{"permuted", perm}, {"duplicated", dup}} {
			cold, err := dp.DistanceCached(v.sig, u, g)
			if err != nil {
				t.Fatalf("cached %s supports: %v", v.name, err)
			}
			if math.Abs(cold-want) > tol {
				t.Fatalf("%s supports %.17g vs reference %.17g (Δ=%g)", v.name, cold, want, cold-want)
			}
			warm, err := dp.DistanceCached(v.sig, u, g)
			if err != nil {
				t.Fatalf("cached %s supports (warm): %v", v.name, err)
			}
			if warm != cold {
				t.Fatalf("%s supports: warm %.17g != cold %.17g (cache must be bit-transparent)", v.name, warm, cold)
			}
		}

		// Basic metric sanity on every fuzzed instance.
		if large < -tol || math.IsNaN(large) || math.IsInf(large, 0) {
			t.Fatalf("block-pricing solver returned %g", large)
		}
		back, err := NewSolver().DistanceLarge(u, s, g)
		if err != nil {
			t.Fatalf("reverse: %v", err)
		}
		if math.Abs(back-large) > 1e-7*(1+large) {
			t.Fatalf("asymmetry: %.17g forward vs %.17g reverse", large, back)
		}
	})
}

func FuzzDistance1D(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(12), uint16(0))
	f.Add(int64(2), uint8(63), uint8(63), uint16(0xAAAA))
	f.Add(int64(3), uint8(1), uint8(1), uint16(0))
	f.Add(int64(7), uint8(40), uint8(3), uint16(0x00FF))
	f.Fuzz(func(t *testing.T, seed int64, kS, kT uint8, zeroMask uint16) {
		rng := randx.New(seed)
		s := fuzzSig(rng, kS, 1, zeroMask, 1)
		u := fuzzSig(rng, kT, 1, zeroMask>>5, 1)

		closed, err := Distance1D(s, u)
		if err != nil {
			t.Fatalf("Distance1D: %v", err)
		}
		if closed < 0 || math.IsNaN(closed) || math.IsInf(closed, 0) {
			t.Fatalf("Distance1D returned %g", closed)
		}

		// Distance must route balanced 1-D Euclidean pairs to the same
		// closed form, bit for bit, on both solver configurations.
		auto, err := Distance(s, u, nil)
		if err != nil {
			t.Fatalf("Distance: %v", err)
		}
		if auto != closed {
			t.Fatalf("Distance %.17g != Distance1D %.17g", auto, closed)
		}
		forced, err := NewSolver().DistanceLarge(s, u, Euclidean)
		if err != nil {
			t.Fatalf("DistanceLarge: %v", err)
		}
		if forced != closed {
			t.Fatalf("DistanceLarge %.17g != Distance1D %.17g", forced, closed)
		}

		// Against the seed-reference simplex: the closed form and the
		// simplex are different algorithms, so the contract is 1e-7
		// (see TestSolver1DFastPathMatchesSimplex); the simplex paths
		// themselves must agree with the reference at 1e-9.
		want := referenceEMD(t, s, u, Euclidean)
		if math.Abs(closed-want) > 1e-7*(1+want) {
			t.Fatalf("closed form %.17g vs reference simplex %.17g", closed, want)
		}
		viaSimplex, err := NewSolver().DistanceLarge(s, u, Manhattan) // 1-D: L1 == L2 ground, but forces the simplex
		if err != nil {
			t.Fatalf("simplex route: %v", err)
		}
		if math.Abs(viaSimplex-want) > 1e-9*(1+want) {
			t.Fatalf("block-pricing simplex %.17g vs reference simplex %.17g", viaSimplex, want)
		}

		// Symmetry of the closed form.
		back, err := Distance1D(u, s)
		if err != nil {
			t.Fatalf("reverse Distance1D: %v", err)
		}
		if math.Abs(back-closed) > 1e-9*(1+closed) {
			t.Fatalf("asymmetric closed form: %.17g vs %.17g", closed, back)
		}
	})
}
