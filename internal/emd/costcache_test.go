package emd

import (
	"testing"

	"repro/internal/bag"
	"repro/internal/randx"
	"repro/internal/signature"
	"repro/internal/testutil"
)

// identityIdx returns [0, 1, ..., n), the srcIdx/dstIdx staging of a
// signature whose weights are all positive (randomSig guarantees that).
func identityIdx(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// TestCostCacheBitIdentity is the cache's core contract as a property
// test: with the cache on, every solve — cold store or warm serve, on
// either simplex path, under either ground, on random as well as
// builder-shaped (histogram/grid) signatures — returns floats
// bit-identical to the uncached solver. This is what licenses keeping
// EMDCostCacheSlots out of the snapshot fingerprint.
func TestCostCacheBitIdentity(t *testing.T) {
	rng := randx.New(77)

	hb := signature.NewHistogramBuilder(0, 1, 16)
	mkHist := func(n int) signature.Signature {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64()
		}
		s, err := hb.Build(bag.FromScalars(0, vals))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	gb := signature.NewGridBuilder([]float64{-1, -1}, []float64{1, 1}, 4)
	mkGrid := func(n int) signature.Signature {
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{2*rng.Float64() - 1, 2*rng.Float64() - 1}
		}
		s, err := gb.Build(bag.New(0, pts))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	type pair struct {
		name string
		s, u signature.Signature
	}
	pairs := []pair{
		{"random-1d", randomSig(rng, 1, 20, 1), randomSig(rng, 1, 20, 1)},
		{"random-2d", randomSig(rng, 2, 24, 1), randomSig(rng, 2, 24, 1)},
		{"random-3d-raw", randomSig(rng, 3, 16, 2.5), randomSig(rng, 3, 16, 0.75)},
		// Histogram bags share bin-midpoint supports: the repeat-heavy
		// shape the cache exists for (one entry serves every solve).
		{"histogram", mkHist(200), mkHist(200)},
		{"grid", mkGrid(120), mkGrid(120)},
	}
	grounds := []struct {
		name string
		g    Ground
	}{{"euclidean", Euclidean}, {"manhattan", Manhattan}}
	paths := []struct {
		name string
		opt  SolverOption
	}{
		{"classic", WithLargeThreshold(-1)},
		{"large", WithLargeThreshold(1)},
	}

	for _, path := range paths {
		for _, gr := range grounds {
			plain := NewSolver(path.opt)
			cached := NewSolver(path.opt, WithCostCache(3))
			for _, p := range pairs {
				want, err := plain.Distance(p.s, p.u, gr.g)
				if err != nil {
					t.Fatalf("%s/%s/%s uncached: %v", path.name, gr.name, p.name, err)
				}
				// Pass 0 stores the matrix, pass 1 is served from it; both
				// must be exactly the uncached value.
				for pass := 0; pass < 2; pass++ {
					got, err := cached.DistanceCached(p.s, p.u, gr.g)
					if err != nil {
						t.Fatalf("%s/%s/%s cached pass %d: %v", path.name, gr.name, p.name, pass, err)
					}
					if got != want {
						t.Fatalf("%s/%s/%s cached pass %d: got %.17g, uncached %.17g (cache must be bit-transparent)",
							path.name, gr.name, p.name, pass, got, want)
					}
				}
			}
		}
	}
}

// TestCostCacheWarmResolveZeroGroundEvals pins the amortization claim
// itself: a warm re-solve of the same support pair performs ZERO ground
// evaluations on both simplex paths — row fills hit rowDone and the
// large path's NW-corner basis costs hit cellDone.
func TestCostCacheWarmResolveZeroGroundEvals(t *testing.T) {
	rng := randx.New(33)
	for _, tc := range []struct {
		name string
		opt  SolverOption
	}{
		{"classic", WithLargeThreshold(-1)},
		{"large", WithLargeThreshold(1)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sv := NewSolver(tc.opt, WithCostCache(2))
			s := randomSig(rng, 2, 24, 1)
			u := randomSig(rng, 2, 24, 1)

			cold, err := sv.DistanceCached(s, u, Euclidean)
			if err != nil {
				t.Fatal(err)
			}
			cs := sv.Stats()
			if cs.GroundEvals == 0 {
				t.Fatal("cold solve performed no ground evaluations")
			}
			if cs.CacheMisses == 0 {
				t.Fatal("cold solve stored nothing into the cache")
			}

			warm, err := sv.DistanceCached(s, u, Euclidean)
			if err != nil {
				t.Fatal(err)
			}
			if warm != cold {
				t.Fatalf("warm %.17g != cold %.17g", warm, cold)
			}
			ws := sv.Stats()
			if ws.GroundEvals != 0 {
				t.Errorf("warm re-solve performed %d ground evals, want 0", ws.GroundEvals)
			}
			if ws.CacheHits == 0 {
				t.Error("warm re-solve served no cells from the cache")
			}
		})
	}
}

// TestCostCacheHashCollisionRejected is the collision-regression test:
// when two distinct support pairs land on the same hash, the bitwise
// support comparison must reject the stored entry (a collision degrades
// to a miss, never a wrong matrix). A natural 64-bit FNV collision is
// unconstructible in a test, so we forge one by rewriting a stored
// entry's fingerprint to the other pair's hash.
func TestCostCacheHashCollisionRejected(t *testing.T) {
	rng := randx.New(99)
	sA, uA := randomSig(rng, 2, 10, 1), randomSig(rng, 2, 10, 1)
	sB, uB := randomSig(rng, 2, 10, 1), randomSig(rng, 2, 10, 1)

	want, err := NewSolver(WithLargeThreshold(-1)).Distance(sB, uB, Euclidean)
	if err != nil {
		t.Fatal(err)
	}

	cc := NewCostCache(4)
	sv := NewSolver(WithLargeThreshold(-1))
	sv.SetCostCache(cc)
	if _, err := sv.DistanceCached(sA, uA, Euclidean); err != nil {
		t.Fatal(err)
	}

	h := supportHash(sB, uB, identityIdx(sB.Len()), identityIdx(uB.Len()), 2)
	forged := 0
	for i := range cc.slots {
		if cc.slots[i].used {
			cc.slots[i].hash = h
			forged++
		}
	}
	if forged == 0 {
		t.Fatal("no used cache entry after a cached solve")
	}

	got, err := sv.DistanceCached(sB, uB, Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("after forged hash collision: got %.17g, want %.17g — collision check served a wrong matrix", got, want)
	}
	if cc.Stats().Collisions == 0 {
		t.Error("forged hash collision was not counted — the bitwise check never fired")
	}
}

// TestCostCacheLRUEviction cycles more support pairs than the cache has
// slots: entries must be displaced (Evictions > 0) and every re-solve —
// hit or rebuilt-after-eviction — must stay exactly correct.
func TestCostCacheLRUEviction(t *testing.T) {
	rng := randx.New(7)
	cc := NewCostCache(2)
	sv := NewSolver(WithLargeThreshold(-1))
	sv.SetCostCache(cc)
	ref := NewSolver(WithLargeThreshold(-1))

	type pair struct {
		s, u signature.Signature
		want float64
	}
	var pairs []pair
	for i := 0; i < 5; i++ {
		s, u := randomSig(rng, 2, 9, 1), randomSig(rng, 2, 9, 1)
		w, err := ref.Distance(s, u, Euclidean)
		if err != nil {
			t.Fatal(err)
		}
		pairs = append(pairs, pair{s, u, w})
	}
	for round := 0; round < 2; round++ {
		for i, p := range pairs {
			got, err := sv.DistanceCached(p.s, p.u, Euclidean)
			if err != nil {
				t.Fatal(err)
			}
			if got != p.want {
				t.Fatalf("round %d pair %d: got %.17g, want %.17g", round, i, got, p.want)
			}
		}
	}
	st := cc.Stats()
	if st.Evictions == 0 {
		t.Errorf("5 pairs through %d slots: no evictions recorded (stats %+v)", cc.Slots(), st)
	}
	if st.Misses < 5 {
		t.Errorf("misses = %d, want >= 5 (each distinct pair must miss at least once)", st.Misses)
	}
}

// TestCostCacheGroundSwitchFlush changes the ground function between
// solves of the same pair: entries priced under Euclidean are wrong for
// Manhattan, so the cache must flush (keyed on the ground's code
// pointer) rather than serve stale rows.
func TestCostCacheGroundSwitchFlush(t *testing.T) {
	rng := randx.New(5)
	s, u := randomSig(rng, 3, 12, 1), randomSig(rng, 3, 12, 1)
	ref := NewSolver()
	we, err := ref.Distance(s, u, Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	wm, err := ref.Distance(s, u, Manhattan)
	if err != nil {
		t.Fatal(err)
	}

	sv := NewSolver(WithCostCache(2))
	if got, err := sv.DistanceCached(s, u, Euclidean); err != nil || got != we {
		t.Fatalf("euclidean: got %.17g (err %v), want %.17g", got, err, we)
	}
	got, err := sv.DistanceCached(s, u, Manhattan)
	if err != nil {
		t.Fatal(err)
	}
	if got != wm {
		t.Fatalf("manhattan after euclidean: got %.17g, want %.17g — stale entries served across a ground switch", got, wm)
	}
	st := sv.Stats()
	if st.GroundEvals == 0 {
		t.Error("ground switch must recompute costs, performed 0 ground evals")
	}
	if st.CacheHits != 0 {
		t.Errorf("ground switch served %d cells from the flushed cache, want 0", st.CacheHits)
	}
}

// TestCostCachePrewarmAfterUseStaysCorrect is the regression test for a
// Prewarm-corruption bug: growing a used entry's cost buffer reallocates
// zeroed memory, but the survived rowDone flags still claimed the rows
// were priced, so a post-use Prewarm to a larger k made warm re-solves
// return 0. Prewarm must instead invalidate any live entry whose buffers
// move (a miss, never a wrong matrix), and keep entries warm when the
// buffers already have capacity.
func TestCostCachePrewarmAfterUseStaysCorrect(t *testing.T) {
	rng := randx.New(4242)
	// Asymmetric supports (64×4) make the cost buffer (m0·n0 = 256
	// floats) smaller than the post-Prewarm k·k requirement while rowDone
	// (cap 64) already covers it — the exact mismatch that corrupted.
	s := randomSig(rng, 2, 64, 1)
	u := randomSig(rng, 2, 4, 1)
	want, err := NewSolver().Distance(s, u, Euclidean)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("grow-invalidates", func(t *testing.T) {
		sv := NewSolver(WithCostCache(2))
		if got, err := sv.DistanceCached(s, u, Euclidean); err != nil || got != want {
			t.Fatalf("cold solve: got %.17g (err %v), want %.17g", got, err, want)
		}
		sv.Prewarm(20) // 20·20 > 64·4: reallocates cost, keeps rowDone
		got, err := sv.DistanceCached(s, u, Euclidean)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("re-solve after post-use Prewarm: got %.17g, want %.17g — Prewarm served zeroed costs as cached", got, want)
		}
		if st := sv.Stats(); st.GroundEvals == 0 {
			t.Error("grown entry must be repriced, performed 0 ground evals")
		}
	})

	t.Run("no-grow-keeps-warm", func(t *testing.T) {
		sv := NewSolver(WithCostCache(2))
		if got, err := sv.DistanceCached(s, u, Euclidean); err != nil || got != want {
			t.Fatalf("cold solve: got %.17g (err %v), want %.17g", got, err, want)
		}
		// Every buffer already has capacity for k=4, dim=2: the live
		// entry must survive and the re-solve stay a zero-eval hit.
		sv.CostCache().Prewarm(4, 2)
		got, err := sv.DistanceCached(s, u, Euclidean)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("re-solve after no-op Prewarm: got %.17g, want %.17g", got, want)
		}
		if st := sv.Stats(); st.GroundEvals != 0 {
			t.Errorf("capacity-covered Prewarm dropped a warm entry: %d ground evals, want 0", st.GroundEvals)
		}
	})
}

// TestPrewarmedSolverFirstDistanceCachedZeroAllocs extends the Prewarm
// zero-alloc guarantee to the cached entry point: a fresh solver with an
// attached cache that was Prewarmed for the signature size must not
// allocate even on its FIRST DistanceCached — including the cache's own
// store of the full cost matrix (per-worker solvers in the detector and
// the pairwise tiles rely on this).
func TestPrewarmedSolverFirstDistanceCachedZeroAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	if testing.Short() {
		t.Skip("K=256 solves are slow under -short")
	}
	const k = 256
	rng := randx.New(1024)
	s := randomSig(rng, 2, k, 1)
	u := randomSig(rng, 2, k, 1)

	const runs = 3
	fresh := make([]*Solver, 0, runs+1)
	for i := 0; i < cap(fresh); i++ {
		sv := NewSolver()
		sv.SetCostCache(NewCostCache(0))
		sv.Prewarm(k) // prewarms the attached cache too
		fresh = append(fresh, sv)
	}
	next := 0
	if allocs := testing.AllocsPerRun(runs, func() {
		sv := fresh[next]
		next++
		if _, err := sv.DistanceCached(s, u, Euclidean); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("first DistanceCached after Prewarm(%d): %g allocs/op, want 0", k, allocs)
	}
}
