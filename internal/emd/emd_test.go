package emd

import (
	"math"
	"testing"

	"repro/internal/randx"
	"repro/internal/signature"
)

func sig1d(xs []float64, ws []float64) signature.Signature {
	s := signature.Signature{Weights: ws}
	for _, x := range xs {
		s.Centers = append(s.Centers, []float64{x})
	}
	return s
}

func TestDistanceSinglePointSignatures(t *testing.T) {
	// With one center each, EMD equals the ground distance regardless of
	// the (possibly unequal) masses.
	s := signature.Signature{Centers: [][]float64{{0, 0}}, Weights: []float64{2}}
	u := signature.Signature{Centers: [][]float64{{3, 4}}, Weights: []float64{7}}
	got, err := Distance(s, u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-5) > 1e-9 {
		t.Errorf("EMD = %g, want 5", got)
	}
}

func TestDistanceIdenticalSignatures(t *testing.T) {
	s := sig1d([]float64{1, 2, 3}, []float64{1, 2, 1})
	got, err := Distance(s, s.Clone(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got > 1e-9 {
		t.Errorf("EMD of identical signatures = %g, want 0", got)
	}
}

func TestDistanceKnownTextbook(t *testing.T) {
	// Two bins at 0 and 1 with mass (1,0) vs (0,1): all mass moves
	// distance 1.
	s := sig1d([]float64{0, 1}, []float64{1, 0.0000001})
	u := sig1d([]float64{0, 1}, []float64{0.0000001, 1})
	got, err := DistanceFlow(s, u, Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.EMD-1) > 1e-5 {
		t.Errorf("EMD = %g, want ~1", got.EMD)
	}
}

func TestDistanceHandComputed2x2(t *testing.T) {
	// Supplies (5, 5) at x=0 and x=10; demands (5, 5) at x=1 and x=9.
	// Optimal: 0→1 (cost 1×5) and 10→9 (cost 1×5); EMD = 10/10 = 1.
	s := sig1d([]float64{0, 10}, []float64{5, 5})
	u := sig1d([]float64{1, 9}, []float64{5, 5})
	got, err := Distance(s, u, Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("EMD = %g, want 1", got)
	}
}

func TestDistancePartialMatching(t *testing.T) {
	// Source has total 10 at x=0, sink has total 4 at x=3. Only
	// min(10,4)=4 units move, each over distance 3 → EMD = 12/4 = 3.
	s := sig1d([]float64{0}, []float64{10})
	u := sig1d([]float64{3}, []float64{4})
	res, err := DistanceFlow(s, u, Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Amount-4) > 1e-9 {
		t.Errorf("Amount = %g, want 4", res.Amount)
	}
	if math.Abs(res.EMD-3) > 1e-8 {
		t.Errorf("EMD = %g, want 3", res.EMD)
	}
}

func TestDistancePartialPrefersNearMass(t *testing.T) {
	// Sink needs 1 unit at x=0. Source has 1 at x=1 and 1 at x=100.
	// Partial matching should take the near unit: EMD = 1.
	s := sig1d([]float64{1, 100}, []float64{1, 1})
	u := sig1d([]float64{0}, []float64{1})
	got, err := Distance(s, u, Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-8 {
		t.Errorf("EMD = %g, want 1 (nearest unit only)", got)
	}
}

func TestDistanceErrors(t *testing.T) {
	good := sig1d([]float64{0}, []float64{1})
	bad := signature.Signature{}
	if _, err := Distance(bad, good, nil); err == nil {
		t.Error("expected error for invalid source")
	}
	if _, err := Distance(good, bad, nil); err == nil {
		t.Error("expected error for invalid sink")
	}
	twoD := signature.Signature{Centers: [][]float64{{1, 2}}, Weights: []float64{1}}
	if _, err := Distance(good, twoD, nil); err == nil {
		t.Error("expected dimension mismatch error")
	}
	badGround := func(a, b []float64) float64 { return math.NaN() }
	u := sig1d([]float64{1}, []float64{1})
	if _, err := Distance(good, u, badGround); err == nil {
		t.Error("expected error for NaN ground distance")
	}
}

func TestDistance1DErrors(t *testing.T) {
	s := sig1d([]float64{0}, []float64{1})
	u := sig1d([]float64{1}, []float64{2})
	if _, err := Distance1D(s, u); err == nil {
		t.Error("expected error for unbalanced totals")
	}
	twoD := signature.Signature{Centers: [][]float64{{1, 2}}, Weights: []float64{1}}
	if _, err := Distance1D(twoD, twoD); err == nil {
		t.Error("expected error for 2-D input")
	}
}

// TestDistance1DZeroTotalGuard is the regression test for the balanced()
// hole: two zero-total signatures satisfied |0−0| <= 1e-9·0 and were
// treated as balanced, so the closed form divided by zero instead of
// erroring. Zero and NaN totals must surface as errors from Distance1D
// and must never select the 1-D fast path in the solver dispatch.
func TestDistance1DZeroTotalGuard(t *testing.T) {
	zero := sig1d([]float64{0, 1}, []float64{0, 0})
	one := sig1d([]float64{0}, []float64{1})
	if _, err := Distance1D(zero, zero); err == nil {
		t.Error("Distance1D(zero, zero): expected error, not a closed-form 0")
	}
	if _, err := Distance1D(zero, one); err == nil {
		t.Error("Distance1D(zero, one): expected error")
	}
	nan := sig1d([]float64{0}, []float64{math.NaN()})
	if _, err := Distance1D(nan, nan); err == nil {
		t.Error("Distance1D(NaN, NaN): expected error")
	}
	if _, err := Distance(zero, zero, nil); err == nil {
		t.Error("Distance(zero, zero): expected error")
	}
}

// TestBalancedRejectsUnusableTotals pins the dispatch guard itself:
// balanced() is what routes Solver.Distance onto the closed form, so it
// must reject totals the closed form cannot divide by even for inputs
// that slipped past (or bypassed) Validate.
func TestBalancedRejectsUnusableTotals(t *testing.T) {
	zero := sig1d([]float64{0}, []float64{0})
	nan := sig1d([]float64{0}, []float64{math.NaN()})
	inf := sig1d([]float64{0, 1}, []float64{math.MaxFloat64, math.MaxFloat64})
	ok := sig1d([]float64{0}, []float64{1})
	cases := []struct {
		name string
		s, t signature.Signature
	}{
		{"zero-zero", zero, zero},
		{"zero-ok", zero, ok},
		{"ok-zero", ok, zero},
		{"nan-nan", nan, nan},
		{"nan-ok", nan, ok},
		{"inf-inf", inf, inf},
	}
	for _, c := range cases {
		if balanced(c.s, c.t) {
			t.Errorf("balanced(%s) = true; unusable totals must never take the closed form", c.name)
		}
	}
	if !balanced(ok, ok) {
		t.Error("balanced(ok, ok) = false; guard broke the normal path")
	}
}

func TestZeroWeightEntriesIgnored(t *testing.T) {
	s := sig1d([]float64{0, 55}, []float64{1, 0})
	u := sig1d([]float64{2}, []float64{1})
	got, err := Distance(s, u, Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2) > 1e-9 {
		t.Errorf("EMD = %g, want 2 (zero-weight center must not matter)", got)
	}
}

func randomSig(rng *randx.RNG, dim, maxLen int, total float64) signature.Signature {
	n := 1 + rng.Intn(maxLen)
	var s signature.Signature
	raw := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		s.Centers = append(s.Centers, rng.NormalVec(dim, 0, 3))
		raw[i] = rng.Gamma(1, 1) + 0.01
		sum += raw[i]
	}
	for i := range raw {
		raw[i] *= total / sum
	}
	s.Weights = raw
	return s
}

func TestSimplexMatches1DClosedForm(t *testing.T) {
	// Strong cross-validation: the exact CDF formula and the simplex must
	// agree on random balanced 1-D instances.
	rng := randx.New(42)
	for trial := 0; trial < 300; trial++ {
		s := randomSig(rng, 1, 8, 1)
		u := randomSig(rng, 1, 8, 1)
		fast, err := Distance1D(s, u)
		if err != nil {
			t.Fatal(err)
		}
		res, err := DistanceFlow(s, u, Euclidean)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fast-res.EMD) > 1e-7*(1+fast) {
			t.Fatalf("trial %d: closed form %g vs simplex %g", trial, fast, res.EMD)
		}
	}
}

func TestAutoFastPathAgreesWithExplicitGround(t *testing.T) {
	rng := randx.New(43)
	for trial := 0; trial < 100; trial++ {
		s := randomSig(rng, 1, 6, 1)
		u := randomSig(rng, 1, 6, 1)
		auto, err := Distance(s, u, nil) // 1-D fast path
		if err != nil {
			t.Fatal(err)
		}
		explicit, err := Distance(s, u, Euclidean) // simplex
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(auto-explicit) > 1e-7*(1+auto) {
			t.Fatalf("trial %d: fast path %g vs simplex %g", trial, auto, explicit)
		}
	}
}

// referenceMinCostFlow solves the balanced transportation problem exactly
// with successive shortest paths (Bellman-Ford on the residual network).
// It is an independent algorithm from the transportation simplex and is
// used only to cross-check it on small instances.
func referenceMinCostFlow(supply, demand []float64, cost [][]float64) float64 {
	m, n := len(supply), len(demand)
	// Node ids: 0 = source, 1..m supplies, m+1..m+n demands, m+n+1 sink.
	src, snk := 0, m+n+1
	numNodes := m + n + 2
	type arc struct {
		to, rev int
		cap, c  float64
	}
	graph := make([][]arc, numNodes)
	addArc := func(u, v int, capacity, c float64) {
		graph[u] = append(graph[u], arc{v, len(graph[v]), capacity, c})
		graph[v] = append(graph[v], arc{u, len(graph[u]) - 1, 0, -c})
	}
	total := 0.0
	for i := range supply {
		addArc(src, 1+i, supply[i], 0)
		total += supply[i]
	}
	for j := range demand {
		addArc(m+1+j, snk, demand[j], 0)
	}
	for i := range supply {
		for j := range demand {
			addArc(1+i, m+1+j, math.Inf(1), cost[i][j])
		}
	}
	totalCost := 0.0
	flowed := 0.0
	for flowed < total-1e-9 {
		// Bellman-Ford shortest path by cost on the residual graph.
		dist := make([]float64, numNodes)
		prevNode := make([]int, numNodes)
		prevArc := make([]int, numNodes)
		for i := range dist {
			dist[i] = math.Inf(1)
			prevNode[i] = -1
		}
		dist[src] = 0
		for iter := 0; iter < numNodes; iter++ {
			changed := false
			for u := 0; u < numNodes; u++ {
				if math.IsInf(dist[u], 1) {
					continue
				}
				for ai, a := range graph[u] {
					if a.cap <= 1e-12 {
						continue
					}
					if nd := dist[u] + a.c; nd < dist[a.to]-1e-15 {
						dist[a.to] = nd
						prevNode[a.to] = u
						prevArc[a.to] = ai
						changed = true
					}
				}
			}
			if !changed {
				break
			}
		}
		if math.IsInf(dist[snk], 1) {
			break // no augmenting path left
		}
		// Bottleneck along the path.
		bottleneck := math.Inf(1)
		for v := snk; v != src; v = prevNode[v] {
			a := graph[prevNode[v]][prevArc[v]]
			if a.cap < bottleneck {
				bottleneck = a.cap
			}
		}
		for v := snk; v != src; v = prevNode[v] {
			a := &graph[prevNode[v]][prevArc[v]]
			a.cap -= bottleneck
			graph[v][a.rev].cap += bottleneck
			totalCost += bottleneck * a.c
		}
		flowed += bottleneck
	}
	return totalCost
}

func TestSimplexMatchesBruteForce(t *testing.T) {
	rng := randx.New(44)
	for trial := 0; trial < 200; trial++ {
		m := 1 + rng.Intn(5)
		n := 1 + rng.Intn(5)
		supply := make([]float64, m)
		demand := make([]float64, n)
		// Integer masses keep brute force exact.
		totS := 0
		for i := range supply {
			v := 1 + rng.Intn(5)
			supply[i] = float64(v)
			totS += v
		}
		rem := totS
		for j := range demand {
			if j == n-1 {
				demand[j] = float64(rem)
			} else {
				v := rng.Intn(rem + 1)
				demand[j] = float64(v)
				rem -= v
			}
		}
		cost := make([][]float64, m)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = rng.Float64() * 10
			}
		}
		// Skip degenerate zero demand columns for brute force fairness:
		// solveTransport handles them; brute force does too (min=0).
		flow, gotCost, err := solveTransport(supply, demand, cost)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := referenceMinCostFlow(supply, demand, cost)
		if math.Abs(gotCost-want) > 1e-6*(1+want) {
			t.Fatalf("trial %d: simplex cost %g, reference min-cost flow %g", trial, gotCost, want)
		}
		// Flow conservation.
		for i := range supply {
			rowSum := 0.0
			for j := range demand {
				rowSum += flow[i][j]
			}
			if rowSum > supply[i]+1e-6 {
				t.Fatalf("trial %d: row %d ships %g > supply %g", trial, i, rowSum, supply[i])
			}
		}
	}
}

func TestEMDIsMetricOnNormalizedSignatures(t *testing.T) {
	// With equal totals and a metric ground distance, EMD is a metric
	// (Rubner 2000). Check symmetry and triangle inequality on random 2-D
	// signatures. A suboptimal solver would violate these regularly.
	rng := randx.New(45)
	for trial := 0; trial < 100; trial++ {
		a := randomSig(rng, 2, 5, 1)
		b := randomSig(rng, 2, 5, 1)
		c := randomSig(rng, 2, 5, 1)
		dab, err1 := Distance(a, b, Euclidean)
		dba, err2 := Distance(b, a, Euclidean)
		dac, err3 := Distance(a, c, Euclidean)
		dcb, err4 := Distance(c, b, Euclidean)
		for _, err := range []error{err1, err2, err3, err4} {
			if err != nil {
				t.Fatal(err)
			}
		}
		if math.Abs(dab-dba) > 1e-7*(1+dab) {
			t.Fatalf("trial %d: EMD not symmetric: %g vs %g", trial, dab, dba)
		}
		if dab > dac+dcb+1e-7 {
			t.Fatalf("trial %d: triangle inequality violated: %g > %g + %g", trial, dab, dac, dcb)
		}
	}
}

func TestEMDTranslationInvariance(t *testing.T) {
	rng := randx.New(46)
	for trial := 0; trial < 50; trial++ {
		a := randomSig(rng, 2, 5, 1)
		b := randomSig(rng, 2, 5, 1)
		shift := rng.NormalVec(2, 0, 10)
		at, bt := a.Clone(), b.Clone()
		for _, cs := range [][][]float64{at.Centers, bt.Centers} {
			for _, c := range cs {
				c[0] += shift[0]
				c[1] += shift[1]
			}
		}
		d1, _ := Distance(a, b, Euclidean)
		d2, _ := Distance(at, bt, Euclidean)
		if math.Abs(d1-d2) > 1e-7*(1+d1) {
			t.Fatalf("trial %d: translation changed EMD: %g vs %g", trial, d1, d2)
		}
	}
}

func TestEMDScaleEquivariance(t *testing.T) {
	// Scaling all centers by α scales EMD by α under the L2 ground.
	rng := randx.New(47)
	for trial := 0; trial < 50; trial++ {
		a := randomSig(rng, 2, 5, 1)
		b := randomSig(rng, 2, 5, 1)
		const alpha = 2.5
		as, bs := a.Clone(), b.Clone()
		for _, cs := range [][][]float64{as.Centers, bs.Centers} {
			for _, c := range cs {
				c[0] *= alpha
				c[1] *= alpha
			}
		}
		d1, _ := Distance(a, b, Euclidean)
		d2, _ := Distance(as, bs, Euclidean)
		if math.Abs(d2-alpha*d1) > 1e-7*(1+d1) {
			t.Fatalf("trial %d: scale equivariance broken: %g vs %g", trial, d2, alpha*d1)
		}
	}
}

func TestEMDMassScaleInvariance(t *testing.T) {
	// EMD (Eq. 12 normalizes by total flow) is invariant to scaling BOTH
	// signatures' weights by the same factor.
	rng := randx.New(48)
	for trial := 0; trial < 50; trial++ {
		a := randomSig(rng, 2, 5, 3)
		b := randomSig(rng, 2, 5, 3)
		a2, b2 := a.Clone(), b.Clone()
		for i := range a2.Weights {
			a2.Weights[i] *= 10
		}
		for i := range b2.Weights {
			b2.Weights[i] *= 10
		}
		d1, _ := Distance(a, b, Euclidean)
		d2, _ := Distance(a2, b2, Euclidean)
		if math.Abs(d1-d2) > 1e-7*(1+d1) {
			t.Fatalf("trial %d: mass scaling changed EMD: %g vs %g", trial, d1, d2)
		}
	}
}

func TestFlowSatisfiesConstraints(t *testing.T) {
	rng := randx.New(49)
	for trial := 0; trial < 50; trial++ {
		a := randomSig(rng, 2, 6, 2+rng.Float64())
		b := randomSig(rng, 2, 6, 2+rng.Float64())
		res, err := DistanceFlow(a, b, Euclidean)
		if err != nil {
			t.Fatal(err)
		}
		totA, totB := a.TotalWeight(), b.TotalWeight()
		wantAmount := math.Min(totA, totB)
		if math.Abs(res.Amount-wantAmount) > 1e-9*(1+wantAmount) {
			t.Fatalf("Amount = %g, want %g", res.Amount, wantAmount)
		}
		// Eq. 9: row sums <= supplies; Eq. 10: column sums <= demands;
		// Eq. 11: total flow == min of totals.
		totalFlow := 0.0
		for i, row := range res.Flow {
			rowSum := 0.0
			for _, f := range row {
				if f < -1e-9 {
					t.Fatal("negative flow")
				}
				rowSum += f
			}
			if rowSum > a.Weights[i]+1e-6*(1+a.Weights[i]) {
				t.Fatalf("row %d flow %g exceeds supply %g", i, rowSum, a.Weights[i])
			}
			totalFlow += rowSum
		}
		for j := range res.Flow[0] {
			colSum := 0.0
			for i := range res.Flow {
				colSum += res.Flow[i][j]
			}
			if colSum > b.Weights[j]+1e-6*(1+b.Weights[j]) {
				t.Fatalf("col %d flow %g exceeds demand %g", j, colSum, b.Weights[j])
			}
		}
		if math.Abs(totalFlow-wantAmount) > 1e-6*(1+wantAmount) {
			t.Fatalf("total flow %g, want %g", totalFlow, wantAmount)
		}
	}
}

func TestGroundDistanceVariants(t *testing.T) {
	s := signature.Signature{Centers: [][]float64{{0, 0}}, Weights: []float64{1}}
	u := signature.Signature{Centers: [][]float64{{3, 4}}, Weights: []float64{1}}
	cases := map[string]struct {
		g    Ground
		want float64
	}{
		"euclidean": {Euclidean, 5},
		"manhattan": {Manhattan, 7},
		"sq":        {SqEuclidean, 25},
		"chebyshev": {Chebyshev, 4},
	}
	for name, tc := range cases {
		got, err := Distance(s, u, tc.g)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("%s: EMD = %g, want %g", name, got, tc.want)
		}
	}
}

func TestSolveTransportRejectsUnbalanced(t *testing.T) {
	_, _, err := solveTransport([]float64{1}, []float64{2}, [][]float64{{1}})
	if err == nil {
		t.Fatal("expected unbalanced error")
	}
}

func TestSolveTransportEmpty(t *testing.T) {
	if _, _, err := solveTransport(nil, nil, nil); err == nil {
		t.Fatal("expected error for empty problem")
	}
}

func TestLargerRandomInstancesStayConsistent(t *testing.T) {
	// Sanity at larger sizes: EMD between a distribution and itself after
	// center permutation is ~0; EMD grows with a deterministic shift.
	rng := randx.New(50)
	a := randomSig(rng, 3, 30, 1)
	perm := a.Clone()
	// Reverse centers+weights (same multiset).
	for i, j := 0, perm.Len()-1; i < j; i, j = i+1, j-1 {
		perm.Centers[i], perm.Centers[j] = perm.Centers[j], perm.Centers[i]
		perm.Weights[i], perm.Weights[j] = perm.Weights[j], perm.Weights[i]
	}
	d, err := Distance(a, perm, Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-7 {
		t.Errorf("EMD to permuted self = %g, want ~0", d)
	}

	shifted := a.Clone()
	for _, c := range shifted.Centers {
		c[0] += 5
	}
	d2, err := Distance(a, shifted, Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d2-5) > 1e-6 {
		t.Errorf("EMD after +5 shift = %g, want 5", d2)
	}
}
