package emd

import (
	"fmt"
	"math"
)

// solve runs the transportation simplex on the problem staged in the
// Solver's buffers (supply, demand, cost, m, n): a northwest-corner
// initial basis followed by MODI (u-v) pivoting. Charnes' epsilon
// perturbation is applied to the supplies to prevent degenerate cycling;
// the perturbation is O(1e-10) of the total mass and its effect on the
// objective is far below the tolerances used by callers.
//
// The entering cell is chosen with per-row candidate pricing: instead of
// scanning all m·n reduced costs on every pivot, the cached per-row
// candidates are re-priced and consumed until they run dry, at which
// point one full O(m·n) scan rebuilds them (priceEnter). solveLarge in
// large.go is the large-signature variant: it replaces that full-scan
// refill with cyclic block pricing over a lazily computed cost matrix.
// This classic path is kept bit-for-bit stable — detector scores below
// the large threshold must not drift (see the golden trace test).
//
// Σ supply must equal Σ demand (prepare balances with a dummy node).
// On success the optimal basis is left in basisI/basisJ/basisF and the
// objective Σ f·c over non-residue flows is returned.
func (sv *Solver) solve() (totalCost float64, err error) {
	m, n := sv.m, sv.n
	eps, nb, err := sv.stageSimplex()
	if err != nil {
		return 0, err
	}
	sv.parent = growInts(sv.parent, m+n)
	sv.visited = growBools(sv.visited, m+n)

	// MODI potentials: solve u_i + v_j = c_ij over the tree. Computed in
	// full once; each pivot then shifts only the subtree cut off by the
	// leaving arc, with a periodic full refresh to keep rounding drift in
	// check.
	if err := sv.potentials(); err != nil {
		return 0, err
	}

	tol := 1e-10 * (1 + sv.maxCost)
	maxIters := 200 + 20*m*n
	for iter := 0; ; iter++ {
		if iter > maxIters {
			return 0, fmt.Errorf("emd: simplex did not converge in %d iterations (%dx%d)", maxIters, m, n)
		}
		if iter%128 == 127 {
			if err := sv.potentials(); err != nil {
				return 0, err
			}
		}

		// --- Entering cell via candidate-list pricing. ---
		enterI, enterJ, r, ok := sv.priceEnter(tol)
		if !ok {
			break // optimal
		}

		// --- Pivot: find the cycle through (enterI, enterJ), shift θ. ---
		sv.statPivots++
		if err := sv.pivot(enterI, enterJ, r); err != nil {
			return 0, err
		}
	}

	// Objective over the optimal basis; clamp perturbation-sized flows.
	clamp := eps * float64(m+n) * 4
	sv.eps = eps
	for bi := 0; bi < nb; bi++ {
		f := sv.basisF[bi]
		if f <= clamp {
			continue
		}
		totalCost += f * sv.cost[sv.basisI[bi]*n+sv.basisJ[bi]]
	}
	return totalCost, nil
}

// stageSimplex runs the head both simplex paths share, on the problem
// staged in supply/demand/m/n: the balance check, the Charnes epsilon
// perturbation (in place — the buffers are re-staged per call), the
// northwest-corner initial basis, growth of the shared scratch, and the
// basis-tree adjacency build. It returns the perturbation eps (the
// caller derives its flow clamp from it) and the basis size m+n−1.
// Everything here is identical float arithmetic on both paths, so
// sharing it cannot perturb the classic path's bits.
func (sv *Solver) stageSimplex() (eps float64, nb int, err error) {
	m, n := sv.m, sv.n
	sv.statPivots, sv.statRefillRows = 0, 0
	if m == 0 || n == 0 {
		return 0, 0, fmt.Errorf("emd: empty transportation problem (%dx%d)", m, n)
	}
	totS, totD := 0.0, 0.0
	for _, v := range sv.supply {
		totS += v
	}
	for _, v := range sv.demand {
		totD += v
	}
	if math.Abs(totS-totD) > 1e-9*math.Max(totS, totD)+1e-300 {
		return 0, 0, fmt.Errorf("emd: unbalanced problem: supply %g vs demand %g", totS, totD)
	}

	// Charnes perturbation: supply_i += eps, demand_last += m*eps.
	eps = totS * 1e-11
	if eps == 0 {
		eps = 1e-11
	}
	for i := range sv.supply {
		sv.supply[i] += eps
	}
	sv.demand[n-1] += float64(m) * eps

	// --- Northwest corner initial basis: exactly m+n-1 basic cells. ---
	nb = m + n - 1
	sv.basisI = growInts(sv.basisI, nb)
	sv.basisJ = growInts(sv.basisJ, nb)
	sv.basisF = growFloats(sv.basisF, nb)
	// Consume the (perturbed) supply/demand residuals destructively; they
	// are not needed after the initial basis is placed.
	ra, rb := sv.supply, sv.demand
	k := 0
	for i, j := 0, 0; ; {
		f := math.Min(ra[i], rb[j])
		if f < 0 {
			f = 0 // guard against rounding residue
		}
		if k >= nb {
			return 0, 0, fmt.Errorf("emd: internal: NW corner produced more than %d basic cells", nb)
		}
		sv.basisI[k], sv.basisJ[k], sv.basisF[k] = i, j, f
		k++
		ra[i] -= f
		rb[j] -= f
		if i == m-1 && j == n-1 {
			break
		}
		// Advance exactly one index per cell so the walk from (0,0) to
		// (m-1,n-1) yields exactly m+n-1 basic cells regardless of
		// floating-point wobble in the residuals.
		switch {
		case j == n-1:
			i++
		case i == m-1:
			j++
		case ra[i] <= rb[j]:
			i++
		default:
			j++
		}
	}
	if k != nb {
		return 0, 0, fmt.Errorf("emd: internal: NW corner produced %d basic cells, want %d", k, nb)
	}

	// Grow the scratch both paths use.
	sv.u = growFloats(sv.u, m)
	sv.v = growFloats(sv.v, n)
	sv.uSet = growBools(sv.uSet, m)
	sv.vSet = growBools(sv.vSet, n)
	sv.rowHead = growInts(sv.rowHead, m)
	sv.colHead = growInts(sv.colHead, n)
	sv.rowNext = growInts(sv.rowNext, nb)
	sv.colNext = growInts(sv.colNext, nb)
	if cap(sv.queue) < m+n {
		sv.queue = make([]int, 0, m+n)
	}
	sv.cand = growInts(sv.cand, m)
	for i := range sv.cand {
		sv.cand[i] = -1
	}

	// Build the basis-tree adjacency (intrusive linked lists) once;
	// pivots patch it incrementally.
	for i := 0; i < m; i++ {
		sv.rowHead[i] = -1
	}
	for j := 0; j < n; j++ {
		sv.colHead[j] = -1
	}
	for bi := 0; bi < nb; bi++ {
		i, j := sv.basisI[bi], sv.basisJ[bi]
		sv.rowNext[bi] = sv.rowHead[i]
		sv.rowHead[i] = bi
		sv.colNext[bi] = sv.colHead[j]
		sv.colHead[j] = bi
	}
	return eps, nb, nil
}

// potentials solves u_i + v_j = c_ij over the basis tree with a BFS from
// row 0 (u_0 = 0).
func (sv *Solver) potentials() error {
	m, n := sv.m, sv.n
	for i := 0; i < m; i++ {
		sv.uSet[i] = false
	}
	for j := 0; j < n; j++ {
		sv.vSet[j] = false
	}
	sv.u[0], sv.uSet[0] = 0, true
	// Queue encodes rows as i, columns as m+j.
	queue := sv.queue[:0]
	queue = append(queue, 0)
	for len(queue) > 0 {
		node := queue[0]
		queue = queue[1:]
		if node < m {
			i := node
			ui := sv.u[i]
			for bi := sv.rowHead[i]; bi != -1; bi = sv.rowNext[bi] {
				j := sv.basisJ[bi]
				if !sv.vSet[j] {
					sv.v[j] = sv.cost[i*n+j] - ui
					sv.vSet[j] = true
					queue = append(queue, m+j)
				}
			}
		} else {
			j := node - m
			vj := sv.v[j]
			for bi := sv.colHead[j]; bi != -1; bi = sv.colNext[bi] {
				i := sv.basisI[bi]
				if !sv.uSet[i] {
					sv.u[i] = sv.cost[i*n+j] - vj
					sv.uSet[i] = true
					queue = append(queue, i)
				}
			}
		}
	}
	for i := 0; i < m; i++ {
		if !sv.uSet[i] {
			return fmt.Errorf("emd: internal: basis tree disconnected at row %d", i)
		}
	}
	for j := 0; j < n; j++ {
		if !sv.vSet[j] {
			return fmt.Errorf("emd: internal: basis tree disconnected at column %d", j)
		}
	}
	return nil
}

// priceEnter picks the entering cell with per-row candidate pricing.
// cand[i] caches the column of the most negative cell seen in row i at
// the last refill. A drain re-prices the m cached cells against the
// current potentials and takes the most negative survivor — O(m) per
// pivot. When every cached cell has gone non-negative, one full O(m·n)
// refill scan rebuilds the row bests; if even a fresh scan finds nothing
// below −tol the basis is optimal (ok=false). The reduced cost r of the
// chosen cell is returned for the incremental potential update.
func (sv *Solver) priceEnter(tol float64) (enterI, enterJ int, r float64, ok bool) {
	m, n := sv.m, sv.n
	// Drain: re-price the cached per-row candidates.
	bestI := -1
	worst := -tol
	for i := 0; i < m; i++ {
		j := sv.cand[i]
		if j < 0 {
			continue
		}
		if rc := sv.cost[i*n+j] - sv.u[i] - sv.v[j]; rc < worst {
			worst = rc
			bestI = i
		}
	}
	if bestI >= 0 {
		return bestI, sv.cand[bestI], worst, true
	}

	// Refill: rebuild every row's best candidate in one full scan. The
	// row sweep goes through the vectorized kernel; priceRow's selection
	// is bit-identical to the scalar loop it replaced, so the classic
	// path's pivot sequence (and the golden trace) is unchanged.
	sv.statRefillRows += m
	for i := 0; i < m; i++ {
		bestJ, rowWorst := priceRow(sv.cost[i*n:(i+1)*n], sv.v[:n], sv.u[i], -tol)
		sv.cand[i] = bestJ
		if rowWorst < worst {
			worst = rowWorst
			bestI = i
		}
	}
	if bestI < 0 {
		return 0, 0, 0, false
	}
	return bestI, sv.cand[bestI], worst, true
}

// pivot finds the unique cycle formed by adding (enterI, enterJ) to the
// basis tree, shifts θ (the minimum flow on the leaving arcs) around it,
// swaps the entering cell for the leaving one, patches the adjacency
// lists, and updates the MODI potentials incrementally: only the subtree
// separated from the root by the entering arc shifts, all by the entering
// cell's reduced cost r.
func (sv *Solver) pivot(enterI, enterJ int, r float64) error {
	m := sv.m
	for x := range sv.visited[:m+sv.n] {
		sv.visited[x] = false
	}
	sv.parent[enterI] = -1
	sv.visited[enterI] = true
	queue := sv.queue[:0]
	queue = append(queue, enterI)
	found := false
	for len(queue) > 0 && !found {
		node := queue[0]
		queue = queue[1:]
		if node < m {
			i := node
			for bi := sv.rowHead[i]; bi != -1; bi = sv.rowNext[bi] {
				nj := m + sv.basisJ[bi]
				if !sv.visited[nj] {
					sv.visited[nj] = true
					sv.parent[nj] = bi
					if nj == m+enterJ {
						found = true
						break
					}
					queue = append(queue, nj)
				}
			}
		} else {
			j := node - m
			for bi := sv.colHead[j]; bi != -1; bi = sv.colNext[bi] {
				ni := sv.basisI[bi]
				if !sv.visited[ni] {
					sv.visited[ni] = true
					sv.parent[ni] = bi
					queue = append(queue, ni)
				}
			}
		}
	}
	if !found {
		return fmt.Errorf("emd: internal: no cycle for entering cell (%d,%d)", enterI, enterJ)
	}
	// Walk back from column enterJ to row enterI collecting the path of
	// basis edges. The cycle is: entering cell (+θ), then path edges
	// alternating −θ, +θ, …
	path := sv.path[:0]
	node := m + enterJ
	for node != enterI {
		bi := sv.parent[node]
		path = append(path, bi)
		if node == m+sv.basisJ[bi] {
			node = sv.basisI[bi]
		} else {
			node = m + sv.basisJ[bi]
		}
	}
	sv.path = path
	// Even positions (0-based) in path are the −θ edges: path[0] shares
	// column enterJ with the entering cell, so it loses flow.
	theta := math.Inf(1)
	leave := -1
	for p := 0; p < len(path); p += 2 {
		bi := path[p]
		if sv.basisF[bi] < theta {
			theta = sv.basisF[bi]
			leave = bi
		}
	}
	if leave == -1 {
		return fmt.Errorf("emd: internal: unbounded pivot")
	}
	for p, bi := range path {
		if p%2 == 0 {
			sv.basisF[bi] -= theta
			if sv.basisF[bi] < 0 {
				sv.basisF[bi] = 0 // rounding residue
			}
		} else {
			sv.basisF[bi] += theta
		}
	}

	// Swap the leaving cell for the entering one, patching the adjacency
	// lists in place.
	oldI, oldJ := sv.basisI[leave], sv.basisJ[leave]
	sv.removeRowArc(oldI, leave)
	sv.removeColArc(oldJ, leave)
	sv.basisI[leave], sv.basisJ[leave], sv.basisF[leave] = enterI, enterJ, theta
	sv.rowNext[leave] = sv.rowHead[enterI]
	sv.rowHead[enterI] = leave
	sv.colNext[leave] = sv.colHead[enterJ]
	sv.colHead[enterJ] = leave

	// Incremental MODI update: removing the entering arc from the new tree
	// splits it into the root component (row 0, whose potentials stand)
	// and the far component, whose potentials all shift by the entering
	// cell's reduced cost r so that u[enterI] + v[enterJ] = c again.
	comp, rootSeen := sv.component(m+enterJ, leave)
	rowShift, colShift := -r, r
	if rootSeen {
		comp, rootSeen = sv.component(enterI, leave)
		if rootSeen {
			return fmt.Errorf("emd: internal: entering arc (%d,%d) does not separate the basis tree", enterI, enterJ)
		}
		rowShift, colShift = r, -r
	}
	for _, node := range comp {
		if node < m {
			sv.u[node] += rowShift
		} else {
			sv.v[node-m] += colShift
		}
	}
	return nil
}

// component collects the nodes reachable from start in the basis tree
// without traversing basis arc skip, and reports whether the root (row 0)
// is among them. The returned slice aliases the solver's queue buffer.
func (sv *Solver) component(start, skip int) (nodes []int, rootSeen bool) {
	m := sv.m
	for x := range sv.visited[:m+sv.n] {
		sv.visited[x] = false
	}
	sv.visited[start] = true
	queue := sv.queue[:0]
	queue = append(queue, start)
	rootSeen = start == 0
	for head := 0; head < len(queue); head++ {
		node := queue[head]
		if node < m {
			for bi := sv.rowHead[node]; bi != -1; bi = sv.rowNext[bi] {
				if bi == skip {
					continue
				}
				if nj := m + sv.basisJ[bi]; !sv.visited[nj] {
					sv.visited[nj] = true
					queue = append(queue, nj)
				}
			}
		} else {
			j := node - m
			for bi := sv.colHead[j]; bi != -1; bi = sv.colNext[bi] {
				if bi == skip {
					continue
				}
				if ni := sv.basisI[bi]; !sv.visited[ni] {
					if ni == 0 {
						rootSeen = true
					}
					sv.visited[ni] = true
					queue = append(queue, ni)
				}
			}
		}
	}
	return queue, rootSeen
}

// removeRowArc unlinks basis entry bi from row i's adjacency list.
func (sv *Solver) removeRowArc(i, bi int) {
	if sv.rowHead[i] == bi {
		sv.rowHead[i] = sv.rowNext[bi]
		return
	}
	for p := sv.rowHead[i]; p != -1; p = sv.rowNext[p] {
		if sv.rowNext[p] == bi {
			sv.rowNext[p] = sv.rowNext[bi]
			return
		}
	}
}

// removeColArc unlinks basis entry bi from column j's adjacency list.
func (sv *Solver) removeColArc(j, bi int) {
	if sv.colHead[j] == bi {
		sv.colHead[j] = sv.colNext[bi]
		return
	}
	for p := sv.colHead[j]; p != -1; p = sv.colNext[p] {
		if sv.colNext[p] == bi {
			sv.colNext[p] = sv.colNext[bi]
			return
		}
	}
}

// solveTransport solves the balanced transportation problem
//
//	min Σ f_ij c_ij   s.t.  Σ_j f_ij = supply_i, Σ_i f_ij = demand_j, f >= 0
//
// and returns the optimal flow matrix and objective. It is the
// allocate-per-call compatibility wrapper over Solver; hot paths should
// hold a Solver (or call Distance/DistanceFlow, which pool them).
func solveTransport(supply, demand []float64, cost [][]float64) (flow [][]float64, totalCost float64, err error) {
	m, n := len(supply), len(demand)
	if m == 0 || n == 0 {
		return nil, 0, fmt.Errorf("emd: empty transportation problem (%dx%d)", m, n)
	}
	sv := solverPool.Get().(*Solver)
	defer solverPool.Put(sv)
	sv.m, sv.n = m, n
	sv.supply = growFloats(sv.supply, m)
	copy(sv.supply, supply)
	sv.demand = growFloats(sv.demand, n)
	copy(sv.demand, demand)
	sv.cost = growFloats(sv.cost, m*n)
	maxCost := 0.0
	for i := 0; i < m; i++ {
		if len(cost[i]) != n {
			return nil, 0, fmt.Errorf("emd: cost row %d has %d columns, want %d", i, len(cost[i]), n)
		}
		copy(sv.cost[i*n:(i+1)*n], cost[i])
		for _, c := range cost[i] {
			if c > maxCost {
				maxCost = c
			}
		}
	}
	sv.maxCost = maxCost
	totalCost, err = sv.solve()
	if err != nil {
		return nil, 0, err
	}
	flow = make([][]float64, m)
	for i := range flow {
		flow[i] = make([]float64, n)
	}
	clamp := sv.eps * float64(m+n) * 4
	for k := range sv.basisF {
		if f := sv.basisF[k]; f > clamp {
			flow[sv.basisI[k]][sv.basisJ[k]] = f
		}
	}
	return flow, totalCost, nil
}
