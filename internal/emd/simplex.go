package emd

import (
	"fmt"
	"math"
)

// solveTransport solves the balanced transportation problem
//
//	min Σ f_ij c_ij   s.t.  Σ_j f_ij = supply_i, Σ_i f_ij = demand_j, f >= 0
//
// with the transportation simplex: a northwest-corner initial basis
// followed by MODI (u-v) pivoting. Charnes' epsilon perturbation is
// applied to the supplies to prevent degenerate cycling; the perturbation
// is O(1e-10) of the total mass and its effect on the objective is far
// below the tolerances used by callers.
//
// Σ supply must equal Σ demand (the caller balances with a dummy node).
func solveTransport(supply, demand []float64, cost [][]float64) (flow [][]float64, totalCost float64, err error) {
	m, n := len(supply), len(demand)
	if m == 0 || n == 0 {
		return nil, 0, fmt.Errorf("emd: empty transportation problem (%dx%d)", m, n)
	}
	totS, totD := 0.0, 0.0
	for _, v := range supply {
		totS += v
	}
	for _, v := range demand {
		totD += v
	}
	if math.Abs(totS-totD) > 1e-9*math.Max(totS, totD)+1e-300 {
		return nil, 0, fmt.Errorf("emd: unbalanced problem: supply %g vs demand %g", totS, totD)
	}

	// Charnes perturbation: supply_i += eps, demand_last += m*eps.
	eps := totS * 1e-11
	if eps == 0 {
		eps = 1e-11
	}
	a := make([]float64, m)
	b := make([]float64, n)
	for i := range a {
		a[i] = supply[i] + eps
	}
	copy(b, demand)
	b[n-1] += float64(m) * eps

	// --- Northwest corner initial basis: exactly m+n-1 basic cells. ---
	type basicCell struct {
		i, j int
		f    float64
	}
	basis := make([]basicCell, 0, m+n-1)
	ra, rb := make([]float64, m), make([]float64, n)
	copy(ra, a)
	copy(rb, b)
	for i, j := 0, 0; ; {
		f := math.Min(ra[i], rb[j])
		if f < 0 {
			f = 0 // guard against rounding residue
		}
		basis = append(basis, basicCell{i, j, f})
		ra[i] -= f
		rb[j] -= f
		if i == m-1 && j == n-1 {
			break
		}
		// Advance exactly one index per cell so the walk from (0,0) to
		// (m-1,n-1) yields exactly m+n-1 basic cells regardless of
		// floating-point wobble in the residuals.
		switch {
		case j == n-1:
			i++
		case i == m-1:
			j++
		case ra[i] <= rb[j]:
			i++
		default:
			j++
		}
	}
	if len(basis) != m+n-1 {
		return nil, 0, fmt.Errorf("emd: internal: NW corner produced %d basic cells, want %d", len(basis), m+n-1)
	}

	// Scratch used across iterations.
	u := make([]float64, m)
	v := make([]float64, n)
	uSet := make([]bool, m)
	vSet := make([]bool, n)
	rowAdj := make([][]int, m) // basis indices in each row
	colAdj := make([][]int, n)
	maxCost := 0.0
	for i := range cost {
		for _, c := range cost[i] {
			if c > maxCost {
				maxCost = c
			}
		}
	}
	tol := 1e-10 * (1 + maxCost)

	maxIters := 200 + 20*m*n
	for iter := 0; ; iter++ {
		if iter > maxIters {
			return nil, 0, fmt.Errorf("emd: simplex did not converge in %d iterations (%dx%d)", maxIters, m, n)
		}

		// Rebuild adjacency of the basis tree.
		for i := range rowAdj {
			rowAdj[i] = rowAdj[i][:0]
		}
		for j := range colAdj {
			colAdj[j] = colAdj[j][:0]
		}
		for bi, c := range basis {
			rowAdj[c.i] = append(rowAdj[c.i], bi)
			colAdj[c.j] = append(colAdj[c.j], bi)
		}

		// --- MODI potentials: solve u_i + v_j = c_ij over the tree. ---
		for i := range uSet {
			uSet[i] = false
		}
		for j := range vSet {
			vSet[j] = false
		}
		u[0], uSet[0] = 0, true
		// BFS over tree nodes; queue holds (isRow, index).
		queue := make([]int, 0, m+n) // encode rows as i, cols as m+j
		queue = append(queue, 0)
		for len(queue) > 0 {
			node := queue[0]
			queue = queue[1:]
			if node < m {
				i := node
				for _, bi := range rowAdj[i] {
					j := basis[bi].j
					if !vSet[j] {
						v[j] = cost[i][j] - u[i]
						vSet[j] = true
						queue = append(queue, m+j)
					}
				}
			} else {
				j := node - m
				for _, bi := range colAdj[j] {
					i := basis[bi].i
					if !uSet[i] {
						u[i] = cost[i][j] - v[j]
						uSet[i] = true
						queue = append(queue, i)
					}
				}
			}
		}
		for i := range uSet {
			if !uSet[i] {
				return nil, 0, fmt.Errorf("emd: internal: basis tree disconnected at row %d", i)
			}
		}
		for j := range vSet {
			if !vSet[j] {
				return nil, 0, fmt.Errorf("emd: internal: basis tree disconnected at column %d", j)
			}
		}

		// --- Entering cell: most negative reduced cost. ---
		enterI, enterJ := -1, -1
		worst := -tol
		for i := 0; i < m; i++ {
			ci := cost[i]
			ui := u[i]
			for j := 0; j < n; j++ {
				if r := ci[j] - ui - v[j]; r < worst {
					worst = r
					enterI, enterJ = i, j
				}
			}
		}
		if enterI == -1 {
			break // optimal
		}

		// --- Find the cycle: path from row enterI to column enterJ in
		// the basis tree, then alternate +θ/−θ around it. ---
		parentEdge := make([]int, m+n) // basis index used to reach node
		for i := range parentEdge {
			parentEdge[i] = -1
		}
		visited := make([]bool, m+n)
		visited[enterI] = true
		queue = queue[:0]
		queue = append(queue, enterI)
		found := false
		for len(queue) > 0 && !found {
			node := queue[0]
			queue = queue[1:]
			if node < m {
				i := node
				for _, bi := range rowAdj[i] {
					nj := m + basis[bi].j
					if !visited[nj] {
						visited[nj] = true
						parentEdge[nj] = bi
						if nj == m+enterJ {
							found = true
							break
						}
						queue = append(queue, nj)
					}
				}
			} else {
				j := node - m
				for _, bi := range colAdj[j] {
					ni := basis[bi].i
					if !visited[ni] {
						visited[ni] = true
						parentEdge[ni] = bi
						queue = append(queue, ni)
					}
				}
			}
		}
		if !found {
			return nil, 0, fmt.Errorf("emd: internal: no cycle for entering cell (%d,%d)", enterI, enterJ)
		}
		// Walk back from column enterJ to row enterI collecting the path
		// of basis edges. The cycle is: entering cell (+θ), then path
		// edges alternating −θ, +θ, …
		var path []int
		node := m + enterJ
		for node != enterI {
			bi := parentEdge[node]
			path = append(path, bi)
			c := basis[bi]
			if node == m+c.j {
				node = c.i
			} else {
				node = m + c.j
			}
		}
		// Odd positions (0-based) in `path` are the −θ edges: path[0]
		// shares column enterJ with the entering cell, so it loses flow.
		theta := math.Inf(1)
		leave := -1
		for p := 0; p < len(path); p += 2 {
			bi := path[p]
			if basis[bi].f < theta {
				theta = basis[bi].f
				leave = bi
			}
		}
		if leave == -1 {
			return nil, 0, fmt.Errorf("emd: internal: unbounded pivot")
		}
		for p, bi := range path {
			if p%2 == 0 {
				basis[bi].f -= theta
				if basis[bi].f < 0 {
					basis[bi].f = 0 // rounding residue
				}
			} else {
				basis[bi].f += theta
			}
		}
		basis[leave] = basicCell{enterI, enterJ, theta}
	}

	// Extract the flow matrix; clamp perturbation-sized values to zero.
	flow = make([][]float64, m)
	for i := range flow {
		flow[i] = make([]float64, n)
	}
	clamp := eps * float64(m+n) * 4
	for _, c := range basis {
		f := c.f
		if f <= clamp {
			continue
		}
		flow[c.i][c.j] = f
		totalCost += f * cost[c.i][c.j]
	}
	return flow, totalCost, nil
}
