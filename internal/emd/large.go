package emd

import (
	"fmt"
	"math"
)

// Block-pricing transportation simplex for large signatures (K ≫ 128).
//
// The classic path (simplex.go) materializes the full m×n cost matrix up
// front, refills its per-row pricing candidates with a full O(m·n)
// sweep whenever they drain, and executes every pivot with two
// whole-tree BFS passes (cycle search + potential-shift component).
// Profiles at K=512 put ~44% of the time in the refill sweeps and ~50%
// in those per-pivot tree passes; both grow with K and neither does
// useful transport work.
//
// This path replaces both:
//
//   - Pricing: Dantzig-style candidate-queue pricing over fixed-size row
//     blocks. Cost rows are computed lazily, a block at a time, the
//     first time pricing scans them — the matrix backing store is
//     reused solver scratch, but the O(K²) ground-distance evaluations
//     are deferred until pricing actually reaches each row. Each block
//     owns a queue of its rows' most negative cells (built by the
//     vectorized priceRow kernel); pivots drain the retained queues —
//     compacting cells the potentials have since priced out — before
//     any rescan, with a Cunningham-style cyclic cursor breaking exact
//     ties toward the least-recently-served block. A refill scans
//     blocks cyclically, RESUMING WHERE THE PREVIOUS REFILL STOPPED,
//     and shrinks to a target of m/4 refreshed rows instead of the
//     classic full sweep; only a refill that wraps through every block
//     without finding a negative reduced cost declares optimality, so
//     the certificate is still a full Dantzig sweep against the final
//     potentials. Basis-cell costs are carried in basisC (filled per
//     cell, not per row), so building the northwest-corner initial
//     basis costs O(m+n) ground evaluations rather than forcing O(m·n)
//     rows.
//
//   - Pivoting: the basis tree is kept ROOTED (parentNode/parentArc/
//     depth per node), in the style of network-simplex implementations
//     with strongly feasible bases. The cycle closed by an entering
//     cell is found by walking the two endpoints up to their lowest
//     common ancestor — O(cycle length) — and the leaving arc detaches
//     a subtree that is re-hung from the entering arc with one BFS over
//     just that subtree, which simultaneously repairs parents, depths,
//     and the MODI potentials (every node in the detached subtree
//     shifts by the entering cell's reduced cost). Per-pivot cost drops
//     from O(m+n) to O(cycle + detached subtree).
//
// Degeneracy is handled exactly as on the classic path: the identical
// Charnes perturbation of the supplies prevents cycling, and a periodic
// full rebuild keeps float drift in the incrementally updated
// potentials in check. Both paths solve the same perturbed problem and
// return the same optimal cost to rounding; degenerate instances may
// settle on different (equally optimal) bases, which is why the
// conformance suite (fuzz_test.go, enum_test.go) checks cost equality
// rather than basis equality, and why the pricing configuration is
// pinned wherever bit-identity is promised.

// solveLarge runs the block-pricing transportation simplex on the
// problem staged by prepareLarge. The contract matches solve: Σ supply
// must equal Σ demand, the optimal basis is left in basisI/basisJ/
// basisF, and the objective over non-residue flows is returned.
func (sv *Solver) solveLarge() (totalCost float64, err error) {
	defer sv.releaseLazy()
	m, n := sv.m, sv.n
	eps, nb, err := sv.stageSimplex()
	if err != nil {
		return 0, err
	}
	// Large-path extras on top of the shared scratch.
	sv.basisC = growFloats(sv.basisC, nb)
	sv.parentNode = growInts(sv.parentNode, m+n)
	sv.parentArc = growInts(sv.parentArc, m+n)
	sv.depth = growInts(sv.depth, m+n)
	if cap(sv.cycA) < nb {
		sv.cycA = make([]int, 0, nb)
	}
	if cap(sv.cycB) < nb {
		sv.cycB = make([]int, 0, nb)
	}
	if cap(sv.path) < nb {
		sv.path = make([]int, 0, nb)
	}

	// Initial basis-cell costs: one lazy lookup per cell, never a full
	// row.
	for bi := 0; bi < nb; bi++ {
		c, cerr := sv.lazyCost(sv.basisI[bi], sv.basisJ[bi])
		if cerr != nil {
			return 0, cerr
		}
		sv.basisC[bi] = c
	}

	if err := sv.buildTreeLarge(); err != nil {
		return 0, err
	}

	maxIters := 200 + 20*m*n
	for iter := 0; ; iter++ {
		if iter > maxIters {
			return 0, fmt.Errorf("emd: simplex did not converge in %d iterations (%dx%d)", maxIters, m, n)
		}
		if iter%128 == 127 {
			// Periodic full rebuild: the incremental potential shifts
			// accumulate rounding drift just like the classic path's.
			if err := sv.buildTreeLarge(); err != nil {
				return 0, err
			}
		}
		enterI, enterJ, r, ok, perr := sv.priceEnterLarge()
		if perr != nil {
			return 0, perr
		}
		if !ok {
			break // optimal
		}
		sv.statPivots++
		if err := sv.pivotLarge(enterI, enterJ, r); err != nil {
			return 0, err
		}
	}

	// Objective over the optimal basis; clamp perturbation-sized flows.
	clamp := eps * float64(m+n) * 4
	sv.eps = eps
	for bi := 0; bi < nb; bi++ {
		f := sv.basisF[bi]
		if f <= clamp {
			continue
		}
		totalCost += f * sv.basisC[bi]
	}
	return totalCost, nil
}

// buildTreeLarge roots the basis tree at row 0 and computes, in one
// BFS over the adjacency lists, the parent/arc/depth structure and the
// MODI potentials u_i + v_j = c_ij (costs from basisC, so no lazy cost
// row is forced).
func (sv *Solver) buildTreeLarge() error {
	m, n := sv.m, sv.n
	for i := 0; i < m; i++ {
		sv.uSet[i] = false
	}
	for j := 0; j < n; j++ {
		sv.vSet[j] = false
	}
	sv.u[0], sv.uSet[0] = 0, true
	sv.parentNode[0], sv.parentArc[0], sv.depth[0] = -1, -1, 0
	queue := sv.queue[:0]
	queue = append(queue, 0)
	for head := 0; head < len(queue); head++ {
		node := queue[head]
		if node < m {
			i := node
			ui := sv.u[i]
			d := sv.depth[i] + 1
			for bi := sv.rowHead[i]; bi != -1; bi = sv.rowNext[bi] {
				j := sv.basisJ[bi]
				if !sv.vSet[j] {
					sv.v[j] = sv.basisC[bi] - ui
					sv.vSet[j] = true
					sv.parentNode[m+j], sv.parentArc[m+j], sv.depth[m+j] = i, bi, d
					queue = append(queue, m+j)
				}
			}
		} else {
			j := node - m
			vj := sv.v[j]
			d := sv.depth[node] + 1
			for bi := sv.colHead[j]; bi != -1; bi = sv.colNext[bi] {
				i := sv.basisI[bi]
				if !sv.uSet[i] {
					sv.u[i] = sv.basisC[bi] - vj
					sv.uSet[i] = true
					sv.parentNode[i], sv.parentArc[i], sv.depth[i] = node, bi, d
					queue = append(queue, i)
				}
			}
		}
	}
	for i := 0; i < m; i++ {
		if !sv.uSet[i] {
			return fmt.Errorf("emd: internal: basis tree disconnected at row %d", i)
		}
	}
	for j := 0; j < n; j++ {
		if !sv.vSet[j] {
			return fmt.Errorf("emd: internal: basis tree disconnected at column %d", j)
		}
	}
	return nil
}

// pivotLarge performs one simplex pivot on the rooted basis tree: the
// cycle through the entering cell (enterI, enterJ) is the tree path
// between its endpoints (found via depth-aligned walks to the lowest
// common ancestor), θ flows around it, and the leaving arc's detached
// subtree is re-hung from the entering arc by a single BFS that repairs
// parents, depths, and potentials together.
func (sv *Solver) pivotLarge(enterI, enterJ int, r float64) error {
	m := sv.m
	jNode := m + enterJ

	// Tree path between enterI and jNode: walk the deeper endpoint up
	// until depths align, then both until they meet.
	cycA := sv.cycA[:0] // arcs from enterI up to the LCA
	cycB := sv.cycB[:0] // arcs from jNode up to the LCA
	a, b := enterI, jNode
	for sv.depth[a] > sv.depth[b] {
		cycA = append(cycA, sv.parentArc[a])
		a = sv.parentNode[a]
	}
	for sv.depth[b] > sv.depth[a] {
		cycB = append(cycB, sv.parentArc[b])
		b = sv.parentNode[b]
	}
	for a != b {
		cycA = append(cycA, sv.parentArc[a])
		a = sv.parentNode[a]
		cycB = append(cycB, sv.parentArc[b])
		b = sv.parentNode[b]
	}
	sv.cycA, sv.cycB = cycA, cycB

	// Assemble the cycle in the classic path order — from the enterJ
	// side to the enterI side — so the even positions are the −θ arcs
	// and the leaving-arc tie-break (first minimum) matches.
	path := sv.path[:0]
	path = append(path, cycB...)
	for q := len(cycA) - 1; q >= 0; q-- {
		path = append(path, cycA[q])
	}
	sv.path = path
	if len(path) == 0 {
		return fmt.Errorf("emd: internal: no cycle for entering cell (%d,%d)", enterI, enterJ)
	}
	theta := math.Inf(1)
	leave := -1
	leavePos := -1
	for p := 0; p < len(path); p += 2 {
		bi := path[p]
		if sv.basisF[bi] < theta {
			theta = sv.basisF[bi]
			leave = bi
			leavePos = p
		}
	}
	if leave == -1 {
		return fmt.Errorf("emd: internal: unbounded pivot")
	}
	for p, bi := range path {
		if p%2 == 0 {
			sv.basisF[bi] -= theta
			if sv.basisF[bi] < 0 {
				sv.basisF[bi] = 0 // rounding residue
			}
		} else {
			sv.basisF[bi] += theta
		}
	}

	// Swap the leaving cell for the entering one in the basis arrays and
	// adjacency lists.
	oldI, oldJ := sv.basisI[leave], sv.basisJ[leave]
	sv.removeRowArc(oldI, leave)
	sv.removeColArc(oldJ, leave)
	sv.basisI[leave], sv.basisJ[leave], sv.basisF[leave] = enterI, enterJ, theta
	sv.basisC[leave] = sv.cost[enterI*sv.n+enterJ] // pricing only proposes computed rows
	sv.rowNext[leave] = sv.rowHead[enterI]
	sv.rowHead[enterI] = leave
	sv.colNext[leave] = sv.colHead[enterJ]
	sv.colHead[enterJ] = leave

	// Removing the leaving arc detached the subtree that contained
	// whichever entering endpoint reached the leaving arc on its walk:
	// positions < len(cycB) lie on the enterJ side. Re-hang that subtree
	// from the entering arc and shift its potentials by ±r so
	// u[enterI] + v[enterJ] = c holds again; nodes outside it keep their
	// potentials, exactly like the classic incremental update (the two
	// choices differ by a global constant that reduced costs cancel).
	start, from := enterI, jNode
	rowShift, colShift := r, -r
	if leavePos < len(cycB) {
		start, from = jNode, enterI
		rowShift, colShift = -r, r
	}
	sv.rehang(start, from, leave, rowShift, colShift)
	return nil
}

// rehang re-roots the detached subtree at node start, whose new parent
// is node from via basis arc arc, repairing parentNode/parentArc/depth
// and shifting every subtree node's potential (rows by rowShift,
// columns by colShift) in one BFS. In a tree each node is reached
// exactly once, so skipping the arrival arc is the only visited check
// needed.
func (sv *Solver) rehang(start, from, arc int, rowShift, colShift float64) {
	m := sv.m
	sv.parentNode[start], sv.parentArc[start] = from, arc
	sv.depth[start] = sv.depth[from] + 1
	if start < m {
		sv.u[start] += rowShift
	} else {
		sv.v[start-m] += colShift
	}
	queue := sv.queue[:0]
	queue = append(queue, start)
	for head := 0; head < len(queue); head++ {
		node := queue[head]
		in := sv.parentArc[node]
		d := sv.depth[node] + 1
		if node < m {
			for bi := sv.rowHead[node]; bi != -1; bi = sv.rowNext[bi] {
				if bi == in {
					continue
				}
				nj := m + sv.basisJ[bi]
				sv.parentNode[nj], sv.parentArc[nj], sv.depth[nj] = node, bi, d
				sv.v[sv.basisJ[bi]] += colShift
				queue = append(queue, nj)
			}
		} else {
			j := node - m
			for bi := sv.colHead[j]; bi != -1; bi = sv.colNext[bi] {
				if bi == in {
					continue
				}
				ni := sv.basisI[bi]
				sv.parentNode[ni], sv.parentArc[ni], sv.depth[ni] = node, bi, d
				sv.u[ni] += rowShift
				queue = append(queue, ni)
			}
		}
	}
}

// priceEnterLarge picks the entering cell with per-block candidate-queue
// pricing. Each pricing block owns a queue of packed (row, col) cells —
// the most negative cell of each of its rows at that block's last
// refill. A drain re-prices every retained queue against the current
// potentials, compacting out cells that have gone non-negative, and
// enters the globally most negative survivor (Dantzig over the retained
// set), so candidates priced by an earlier refill but not pivoted are
// consumed across later pivots instead of being rediscovered by another
// sweep. Queues are visited cyclically from the drain cursor, which
// advances past the block that supplied the entering cell: among exactly
// equal reduced costs the least-recently-served block wins, a
// Cunningham-style rotation that (on top of the Charnes perturbation)
// keeps degenerate ties from revisiting the same rows.
//
// When the drain comes up dry, the refill scans blocks cyclically from
// the cursor left by the previous refill, computing rows lazily and
// rebuilding each scanned block's queue via the vectorized priceRow
// kernel, until it has both found a candidate and refreshed
// refillRowTarget rows. Only a refill that wraps through every block
// without a find returns ok=false — by then every row has been computed
// and freshly priced, so that is the classic full-sweep optimality
// certificate.
func (sv *Solver) priceEnterLarge() (enterI, enterJ int, r float64, ok bool, err error) {
	m, n := sv.m, sv.n
	tol := 1e-10 * (1 + sv.maxCost)
	bsz := sv.priceB
	if bsz <= 0 {
		bsz = DefaultPricingBlock
	}
	nblk := (m + bsz - 1) / bsz

	// Drain the retained queues.
	bestI, bestJ, bestBlk := -1, -1, -1
	worst := -tol
	for scanned := 0; scanned < nblk; scanned++ {
		blk := sv.qCur + scanned
		if blk >= nblk {
			blk -= nblk
		}
		qn := sv.blkQn[blk]
		if qn == 0 {
			continue
		}
		q := sv.blkQ[blk*bsz : blk*bsz+qn]
		keep := 0
		for _, cell := range q {
			i := int(cell >> 32)
			j := int(cell & 0xffffffff)
			rc := sv.cost[i*n+j] - sv.u[i] - sv.v[j]
			if rc >= -tol {
				continue // stale under the current potentials: compact out
			}
			q[keep] = cell
			keep++
			if rc < worst {
				worst = rc
				bestI, bestJ, bestBlk = i, j, blk
			}
		}
		sv.blkQn[blk] = keep
	}
	if bestI >= 0 {
		sv.statCandReuse++
		sv.qCur = bestBlk + 1
		if sv.qCur >= nblk {
			sv.qCur = 0
		}
		return bestI, bestJ, worst, true, nil
	}

	// Refill: cyclic block scan resuming at the cursor. One block of
	// fresh candidates is rarely enough to keep the entering choices
	// steep — pivot counts blow up and eat the refill savings — so the
	// refill keeps scanning until it has both found a candidate and
	// refreshed refillRowTarget rows, shrinking to that floor instead
	// of the classic full sweep.
	target := sv.refillRowTarget()
	rowsScanned := 0
	for scanned := 0; scanned < nblk; scanned++ {
		blk := sv.blockCur + scanned
		if blk >= nblk {
			blk -= nblk
		}
		iLo := blk * bsz
		iHi := iLo + bsz
		if iHi > m {
			iHi = m
		}
		rowsScanned += iHi - iLo
		sv.statRefillRows += iHi - iLo
		q := sv.blkQ[blk*bsz:]
		qn := 0
		for i := iLo; i < iHi; i++ {
			if !sv.rowReady[i] {
				if err := sv.fillRow(i); err != nil {
					return 0, 0, 0, false, err
				}
			}
			// Newly computed rows can raise maxCost; keep the tolerance
			// in step so candidate acceptance matches the final sweep.
			tol = 1e-10 * (1 + sv.maxCost)
			rowJ, rowWorst := priceRow(sv.cost[i*n:(i+1)*n], sv.v[:n], sv.u[i], -tol)
			if rowJ < 0 {
				continue
			}
			q[qn] = int64(i)<<32 | int64(rowJ)
			qn++
			if bestI < 0 || rowWorst < worst {
				bestI, bestJ = i, rowJ
				worst = rowWorst
			}
		}
		sv.blkQn[blk] = qn
		if bestI >= 0 && rowsScanned >= target {
			// Resume the NEXT refill after this block, and rotate the
			// drain cursor past the block that supplied the entering cell.
			sv.blockCur = blk + 1
			if sv.blockCur >= nblk {
				sv.blockCur = 0
			}
			sv.qCur = bestI/bsz + 1
			if sv.qCur >= nblk {
				sv.qCur = 0
			}
			return bestI, bestJ, worst, true, nil
		}
	}
	if bestI < 0 {
		return 0, 0, 0, false, nil
	}
	// Candidates surfaced only while completing the wrap; the cursor
	// positions are immaterial because every block was just refreshed.
	return bestI, bestJ, worst, true, nil
}

// refillRowTarget is the number of rows a large-path refill refreshes
// before it stops (once it has at least one candidate): a quarter of
// the rows, floored at one block. Scanning less makes entering choices
// too shallow (pivot counts blow up); scanning everything is the
// classic full sweep the block path exists to avoid.
func (sv *Solver) refillRowTarget() int {
	bsz := sv.priceB
	if bsz <= 0 {
		bsz = DefaultPricingBlock
	}
	t := sv.m / 4
	if t < bsz {
		t = bsz
	}
	return t
}
