package emd

import (
	"math"
	"testing"

	"repro/internal/randx"
	"repro/internal/signature"
	"repro/internal/testutil"
)

// referenceSolveTransport is the seed implementation of the
// transportation simplex, kept verbatim as an independent oracle for the
// rewritten allocation-free solver: northwest-corner start, full-matrix
// Dantzig pricing, per-iteration allocation of all scratch.
func referenceSolveTransport(supply, demand []float64, cost [][]float64) (flow [][]float64, totalCost float64, err error) {
	m, n := len(supply), len(demand)
	if m == 0 || n == 0 {
		return nil, 0, errEmpty
	}
	totS, totD := 0.0, 0.0
	for _, v := range supply {
		totS += v
	}
	for _, v := range demand {
		totD += v
	}
	if math.Abs(totS-totD) > 1e-9*math.Max(totS, totD)+1e-300 {
		return nil, 0, errUnbalanced
	}

	eps := totS * 1e-11
	if eps == 0 {
		eps = 1e-11
	}
	a := make([]float64, m)
	b := make([]float64, n)
	for i := range a {
		a[i] = supply[i] + eps
	}
	copy(b, demand)
	b[n-1] += float64(m) * eps

	type basicCell struct {
		i, j int
		f    float64
	}
	basis := make([]basicCell, 0, m+n-1)
	ra, rb := make([]float64, m), make([]float64, n)
	copy(ra, a)
	copy(rb, b)
	for i, j := 0, 0; ; {
		f := math.Min(ra[i], rb[j])
		if f < 0 {
			f = 0
		}
		basis = append(basis, basicCell{i, j, f})
		ra[i] -= f
		rb[j] -= f
		if i == m-1 && j == n-1 {
			break
		}
		switch {
		case j == n-1:
			i++
		case i == m-1:
			j++
		case ra[i] <= rb[j]:
			i++
		default:
			j++
		}
	}
	if len(basis) != m+n-1 {
		return nil, 0, errInternal
	}

	u := make([]float64, m)
	v := make([]float64, n)
	uSet := make([]bool, m)
	vSet := make([]bool, n)
	rowAdj := make([][]int, m)
	colAdj := make([][]int, n)
	maxCost := 0.0
	for i := range cost {
		for _, c := range cost[i] {
			if c > maxCost {
				maxCost = c
			}
		}
	}
	tol := 1e-10 * (1 + maxCost)

	maxIters := 200 + 20*m*n
	for iter := 0; ; iter++ {
		if iter > maxIters {
			return nil, 0, errInternal
		}
		for i := range rowAdj {
			rowAdj[i] = rowAdj[i][:0]
		}
		for j := range colAdj {
			colAdj[j] = colAdj[j][:0]
		}
		for bi, c := range basis {
			rowAdj[c.i] = append(rowAdj[c.i], bi)
			colAdj[c.j] = append(colAdj[c.j], bi)
		}
		for i := range uSet {
			uSet[i] = false
		}
		for j := range vSet {
			vSet[j] = false
		}
		u[0], uSet[0] = 0, true
		queue := make([]int, 0, m+n)
		queue = append(queue, 0)
		for len(queue) > 0 {
			node := queue[0]
			queue = queue[1:]
			if node < m {
				i := node
				for _, bi := range rowAdj[i] {
					j := basis[bi].j
					if !vSet[j] {
						v[j] = cost[i][j] - u[i]
						vSet[j] = true
						queue = append(queue, m+j)
					}
				}
			} else {
				j := node - m
				for _, bi := range colAdj[j] {
					i := basis[bi].i
					if !uSet[i] {
						u[i] = cost[i][j] - v[j]
						uSet[i] = true
						queue = append(queue, i)
					}
				}
			}
		}
		for i := range uSet {
			if !uSet[i] {
				return nil, 0, errInternal
			}
		}
		for j := range vSet {
			if !vSet[j] {
				return nil, 0, errInternal
			}
		}

		enterI, enterJ := -1, -1
		worst := -tol
		for i := 0; i < m; i++ {
			ci := cost[i]
			ui := u[i]
			for j := 0; j < n; j++ {
				if r := ci[j] - ui - v[j]; r < worst {
					worst = r
					enterI, enterJ = i, j
				}
			}
		}
		if enterI == -1 {
			break
		}

		parentEdge := make([]int, m+n)
		for i := range parentEdge {
			parentEdge[i] = -1
		}
		visited := make([]bool, m+n)
		visited[enterI] = true
		queue = queue[:0]
		queue = append(queue, enterI)
		found := false
		for len(queue) > 0 && !found {
			node := queue[0]
			queue = queue[1:]
			if node < m {
				i := node
				for _, bi := range rowAdj[i] {
					nj := m + basis[bi].j
					if !visited[nj] {
						visited[nj] = true
						parentEdge[nj] = bi
						if nj == m+enterJ {
							found = true
							break
						}
						queue = append(queue, nj)
					}
				}
			} else {
				j := node - m
				for _, bi := range colAdj[j] {
					ni := basis[bi].i
					if !visited[ni] {
						visited[ni] = true
						parentEdge[ni] = bi
						queue = append(queue, ni)
					}
				}
			}
		}
		if !found {
			return nil, 0, errInternal
		}
		var path []int
		node := m + enterJ
		for node != enterI {
			bi := parentEdge[node]
			path = append(path, bi)
			c := basis[bi]
			if node == m+c.j {
				node = c.i
			} else {
				node = m + c.j
			}
		}
		theta := math.Inf(1)
		leave := -1
		for p := 0; p < len(path); p += 2 {
			bi := path[p]
			if basis[bi].f < theta {
				theta = basis[bi].f
				leave = bi
			}
		}
		if leave == -1 {
			return nil, 0, errInternal
		}
		for p, bi := range path {
			if p%2 == 0 {
				basis[bi].f -= theta
				if basis[bi].f < 0 {
					basis[bi].f = 0
				}
			} else {
				basis[bi].f += theta
			}
		}
		basis[leave] = basicCell{enterI, enterJ, theta}
	}

	flow = make([][]float64, m)
	for i := range flow {
		flow[i] = make([]float64, n)
	}
	clamp := eps * float64(m+n) * 4
	for _, c := range basis {
		f := c.f
		if f <= clamp {
			continue
		}
		flow[c.i][c.j] = f
		totalCost += f * cost[c.i][c.j]
	}
	return flow, totalCost, nil
}

var (
	errEmpty      = errString("empty")
	errUnbalanced = errString("unbalanced")
	errInternal   = errString("internal")
)

type errString string

func (e errString) Error() string { return string(e) }

// referenceEMD runs the full legacy DistanceFlow pipeline (zero-weight
// filtering, dummy balancing, reference simplex) and returns the EMD.
func referenceEMD(t *testing.T, s, u signature.Signature, g Ground) float64 {
	t.Helper()
	if g == nil {
		g = Euclidean
	}
	var sc, tc [][]float64
	var sw, tw []float64
	for i, w := range s.Weights {
		if w > 0 {
			sc = append(sc, s.Centers[i])
			sw = append(sw, w)
		}
	}
	for i, w := range u.Weights {
		if w > 0 {
			tc = append(tc, u.Centers[i])
			tw = append(tw, w)
		}
	}
	m, n := len(sw), len(tw)
	cost := make([][]float64, m)
	totS, totT := 0.0, 0.0
	for _, w := range sw {
		totS += w
	}
	for _, w := range tw {
		totT += w
	}
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			cost[i][j] = g(sc[i], tc[j])
		}
	}
	supply := append([]float64(nil), sw...)
	demand := append([]float64(nil), tw...)
	diff := totS - totT
	const relTol = 1e-12
	if diff > relTol*math.Max(totS, totT) {
		demand = append(demand, diff)
		for i := range cost {
			cost[i] = append(cost[i], 0)
		}
	} else if -diff > relTol*math.Max(totS, totT) {
		supply = append(supply, -diff)
		cost = append(cost, make([]float64, n))
	} else if diff > 0 {
		demand[n-1] += diff
	} else if diff != 0 {
		supply[m-1] -= diff
	}
	_, totalCost, err := referenceSolveTransport(supply, demand, cost)
	if err != nil {
		t.Fatalf("reference solver: %v", err)
	}
	amount := math.Min(totS, totT)
	if amount <= 0 {
		return 0
	}
	return totalCost / amount
}

// TestSolverMatchesReferenceImplementation cross-checks the rewritten
// allocation-free Solver against the seed implementation on random
// signature pairs across sizes, dimensions, and balanced/unbalanced mass.
func TestSolverMatchesReferenceImplementation(t *testing.T) {
	rng := randx.New(1234)
	sv := NewSolver()
	for trial := 0; trial < 400; trial++ {
		dim := 1 + rng.Intn(4)
		maxLen := 1 + rng.Intn(12)
		totalS, totalT := 1.0, 1.0
		if trial%3 == 1 {
			// Unbalanced: partial matching through the dummy node.
			totalS = 0.5 + rng.Float64()*4
			totalT = 0.5 + rng.Float64()*4
		}
		s := randomSig(rng, dim, maxLen, totalS)
		u := randomSig(rng, dim, maxLen, totalT)

		want := referenceEMD(t, s, u, Euclidean)

		got, err := sv.Distance(s, u, Euclidean)
		if err != nil {
			t.Fatalf("trial %d: Solver.Distance: %v", trial, err)
		}
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d (dim=%d): Solver.Distance %.15g vs reference %.15g", trial, dim, got, want)
		}

		res, err := sv.DistanceFlow(s, u, Euclidean)
		if err != nil {
			t.Fatalf("trial %d: Solver.DistanceFlow: %v", trial, err)
		}
		if math.Abs(res.EMD-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d: Solver.DistanceFlow %.15g vs reference %.15g", trial, res.EMD, want)
		}

		// The pooled package-level entry points must agree too.
		pkg, err := Distance(s, u, Manhattan)
		if err != nil {
			t.Fatalf("trial %d: Distance: %v", trial, err)
		}
		wantL1 := referenceEMD(t, s, u, Manhattan)
		if math.Abs(pkg-wantL1) > 1e-9*(1+wantL1) {
			t.Fatalf("trial %d: Distance(L1) %.15g vs reference %.15g", trial, pkg, wantL1)
		}
	}
}

// TestSolver1DFastPathMatchesSimplex checks the closed-form 1-D path
// against the general simplex on balanced 1-D instances, through both the
// Solver API and the package API.
func TestSolver1DFastPathMatchesSimplex(t *testing.T) {
	rng := randx.New(4321)
	sv := NewSolver()
	for trial := 0; trial < 300; trial++ {
		s := randomSig(rng, 1, 1+rng.Intn(10), 1)
		u := randomSig(rng, 1, 1+rng.Intn(10), 1)
		fast, err := sv.Distance(s, u, Euclidean) // takes the closed form
		if err != nil {
			t.Fatal(err)
		}
		res, err := sv.DistanceFlow(s, u, Euclidean) // always simplex
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fast-res.EMD) > 1e-7*(1+fast) {
			t.Fatalf("trial %d: fast path %g vs simplex %g", trial, fast, res.EMD)
		}
	}
}

// TestExplicitEuclideanTakesFastPath documents the Distance contract: an
// explicit emd.Euclidean ground must produce exactly the same value as
// the nil (auto) ground on balanced 1-D signatures — both take the exact
// closed form.
func TestExplicitEuclideanTakesFastPath(t *testing.T) {
	rng := randx.New(99)
	for trial := 0; trial < 100; trial++ {
		s := randomSig(rng, 1, 8, 1)
		u := randomSig(rng, 1, 8, 1)
		auto, err := Distance(s, u, nil)
		if err != nil {
			t.Fatal(err)
		}
		explicit, err := Distance(s, u, Euclidean)
		if err != nil {
			t.Fatal(err)
		}
		if auto != explicit {
			t.Fatalf("trial %d: nil ground %.17g != explicit Euclidean %.17g", trial, auto, explicit)
		}
		closed, err := Distance1D(s, u)
		if err != nil {
			t.Fatal(err)
		}
		if explicit != closed {
			t.Fatalf("trial %d: explicit Euclidean %.17g != Distance1D %.17g", trial, explicit, closed)
		}
	}
}

// TestSolverReuseAcrossSizes stresses buffer reuse: interleave problems of
// very different sizes and dimensions on one Solver.
func TestSolverReuseAcrossSizes(t *testing.T) {
	rng := randx.New(777)
	sv := NewSolver()
	sizes := []int{1, 30, 2, 18, 64, 3}
	for trial := 0; trial < 60; trial++ {
		k := sizes[trial%len(sizes)]
		dim := 1 + trial%3
		s := randomSig(rng, dim, k, 1+rng.Float64())
		u := randomSig(rng, dim, k, 1+rng.Float64())
		got, err := sv.Distance(s, u, Euclidean)
		if err != nil {
			t.Fatal(err)
		}
		want := referenceEMD(t, s, u, Euclidean)
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d (K=%d): %.15g vs %.15g", trial, k, got, want)
		}
	}
}

// TestWarmSolverDistanceZeroAllocs is the allocation-regression guard for
// the tentpole: a warm Solver computes simplex distances and 1-D
// closed-form distances without a single heap allocation.
func TestWarmSolverDistanceZeroAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	rng := randx.New(5)
	sv := NewSolver()
	s2 := randomSig(rng, 2, 24, 1)
	u2 := randomSig(rng, 2, 24, 1)
	s1 := randomSig(rng, 1, 24, 1)
	u1 := randomSig(rng, 1, 24, 1)
	// Warm the buffers.
	if _, err := sv.Distance(s2, u2, Euclidean); err != nil {
		t.Fatal(err)
	}
	if _, err := sv.Distance(s1, u1, Euclidean); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		if _, err := sv.Distance(s2, u2, Euclidean); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("warm Solver.Distance (simplex): %g allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		if _, err := sv.Distance(s1, u1, Euclidean); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("warm Solver.Distance (1-D fast path): %g allocs/op, want 0", allocs)
	}
}

// TestPrewarmedSolverFirstDistanceZeroAllocs guards the Prewarm hook:
// a freshly constructed Solver that is Prewarmed for the problem size
// must not allocate even on its FIRST Distance call — that is the whole
// point of the hook for per-worker solvers in batch drivers. Each run
// consumes a brand-new prewarmed solver so every measured call is a
// first call (AllocsPerRun's internal warm-up run included).
func TestPrewarmedSolverFirstDistanceZeroAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	const maxLen = 24
	rng := randx.New(9)
	s2 := randomSig(rng, 2, maxLen, 1)
	u2 := randomSig(rng, 2, maxLen, 1)
	s1 := randomSig(rng, 1, maxLen, 1)
	u1 := randomSig(rng, 1, maxLen, 1)

	const runs = 20
	fresh := make([]*Solver, 0, 2*(runs+1)+2)
	for i := 0; i < cap(fresh); i++ {
		sv := NewSolver()
		sv.Prewarm(maxLen)
		fresh = append(fresh, sv)
	}
	next := 0
	take := func() *Solver { sv := fresh[next]; next++; return sv }

	if allocs := testing.AllocsPerRun(runs, func() {
		if _, err := take().Distance(s2, u2, Euclidean); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("first Distance (simplex) after Prewarm: %g allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(runs, func() {
		if _, err := take().Distance(s1, u1, Euclidean); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("first Distance (1-D fast path) after Prewarm: %g allocs/op, want 0", allocs)
	}

	// Prewarm must not perturb results: a prewarmed solver and the pooled
	// package function agree bit-for-bit.
	want, err := Distance(s2, u2, Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	got, err := take().Distance(s2, u2, Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("prewarmed solver Distance = %g, pooled = %g", got, want)
	}
}

// TestPooledDistanceSteadyStateAllocs guards the package-level wrapper:
// after warmup the sync.Pool rental must not allocate either.
func TestPooledDistanceSteadyStateAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	rng := randx.New(6)
	s := randomSig(rng, 2, 16, 1)
	u := randomSig(rng, 2, 16, 1)
	for i := 0; i < 5; i++ {
		if _, err := Distance(s, u, Euclidean); err != nil {
			t.Fatal(err)
		}
	}
	if allocs := testing.AllocsPerRun(50, func() {
		if _, err := Distance(s, u, Euclidean); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("pooled Distance: %g allocs/op, want 0", allocs)
	}
}
