package emd

// priceRow computes the reduced costs of one cost-matrix row and returns
// the column index of the first strict minimum below worst0 (or -1), plus
// the winning value. It is the vectorized replacement for the solver's
// dense pricing loops: the equal-length reslices let the compiler drop
// every per-iteration bounds check, and the 4-wide unroll keeps four
// independent subtraction chains in flight.
//
// Selection semantics are bit-identical to the scalar loop
//
//	for j := 0; j < n; j++ {
//	    if rc := row[j] - ui - v[j]; rc < rowWorst { rowWorst, bestJ = rc, j }
//	}
//
// the unrolled lanes are compared sequentially in index order against the
// running worst with the same strict <, so ties resolve to the lowest j
// exactly as before. Callers rely on this: pivot sequences (and therefore
// final bits) must not change with the kernel swap.
func priceRow(row, v []float64, ui, worst0 float64) (int, float64) {
	n := len(row)
	if len(v) < n {
		n = len(v)
	}
	row = row[:n]
	v = v[:n:n]

	bestJ := -1
	worst := worst0
	j := 0
	for ; j+4 <= n; j += 4 {
		r := row[j : j+4 : j+4]
		w := v[j : j+4 : j+4]
		rc0 := r[0] - ui - w[0]
		rc1 := r[1] - ui - w[1]
		rc2 := r[2] - ui - w[2]
		rc3 := r[3] - ui - w[3]
		if rc0 < worst {
			worst = rc0
			bestJ = j
		}
		if rc1 < worst {
			worst = rc1
			bestJ = j + 1
		}
		if rc2 < worst {
			worst = rc2
			bestJ = j + 2
		}
		if rc3 < worst {
			worst = rc3
			bestJ = j + 3
		}
	}
	for ; j < n; j++ {
		if rc := row[j] - ui - v[j]; rc < worst {
			worst = rc
			bestJ = j
		}
	}
	return bestJ, worst
}
