package emd

import (
	"math"
	"testing"

	"repro/internal/randx"
	"repro/internal/testutil"
)

// TestDistanceLargeMatchesClassic is the core conformance property of
// the block-pricing rework: on any instance, the large path and the
// classic path find the same optimal cost (the bases may differ on
// degenerate instances, the objective may not). Random signatures
// across sizes, dimensions, balanced/unbalanced mass, and grounds.
func TestDistanceLargeMatchesClassic(t *testing.T) {
	rng := randx.New(20250729)
	classic := NewSolver(WithLargeThreshold(-1))
	large := NewSolver()
	for trial := 0; trial < 300; trial++ {
		dim := 1 + rng.Intn(4)
		maxLen := 1 + rng.Intn(24)
		totalS, totalT := 1.0, 1.0
		if trial%3 == 1 {
			totalS = 0.5 + rng.Float64()*4
			totalT = 0.5 + rng.Float64()*4
		}
		s := randomSig(rng, dim, maxLen, totalS)
		u := randomSig(rng, dim, maxLen, totalT)
		g := Euclidean
		if trial%4 == 2 {
			g = Manhattan
		}
		if dim == 1 && trial%2 == 0 {
			g = Manhattan // force the simplex on half the 1-D instances
		}
		want, err := classic.Distance(s, u, g)
		if err != nil {
			t.Fatalf("trial %d: classic: %v", trial, err)
		}
		got, err := large.DistanceLarge(s, u, g)
		if err != nil {
			t.Fatalf("trial %d: DistanceLarge: %v", trial, err)
		}
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d (dim=%d): DistanceLarge %.15g vs classic %.15g", trial, dim, got, want)
		}
	}
}

// TestDistanceLargeMatchesReference pits the block-pricing solver
// against the retained seed-reference simplex at sizes past the auto
// threshold, where the classic comparison above never runs the forced
// path through Distance's own dispatch.
func TestDistanceLargeMatchesReference(t *testing.T) {
	if testing.Short() {
		t.Skip("large instances are slow under -short")
	}
	rng := randx.New(77)
	sv := NewSolver() // default threshold: K >= 128 takes the large path
	for _, k := range []int{130, 160, 200} {
		s := randomSig(rng, 2, k, 1)
		u := randomSig(rng, 2, k, 1)
		want := referenceEMD(t, s, u, Euclidean)
		got, err := sv.Distance(s, u, Euclidean)
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("K=%d: auto large path %.15g vs reference %.15g", k, got, want)
		}
	}
}

// TestDistanceAutoSelectionBitMatchesForced documents the dispatch
// contract: once a pair reaches the threshold, Distance runs exactly
// the same block-pricing code as DistanceLarge — bit-identical values,
// on warm and cold solvers alike (the pricing cursor is reset per
// solve, so history cannot leak between calls).
func TestDistanceAutoSelectionBitMatchesForced(t *testing.T) {
	rng := randx.New(31)
	// Threshold 1: every pair is large-eligible, so auto dispatch runs the
	// block-pricing code on all trials (randomSig treats its size argument
	// as a maximum — a higher threshold would silently route the short
	// draws onto the classic path, which only promises tolerance-level
	// agreement with the large path, not bit equality).
	auto := NewSolver(WithLargeThreshold(1))
	forced := NewSolver()
	for trial := 0; trial < 50; trial++ {
		s := randomSig(rng, 2, 12+rng.Intn(20), 1+rng.Float64())
		u := randomSig(rng, 2, 12+rng.Intn(20), 1+rng.Float64())
		a, err := auto.Distance(s, u, Euclidean)
		if err != nil {
			t.Fatal(err)
		}
		f, err := forced.DistanceLarge(s, u, Euclidean)
		if err != nil {
			t.Fatal(err)
		}
		if a != f {
			t.Fatalf("trial %d: auto %.17g != forced %.17g", trial, a, f)
		}
	}
}

// TestDistanceLargeBelowThresholdUnchanged guards the other half of the
// dispatch: below the threshold Distance must keep the classic path
// bit-for-bit (the golden detector trace depends on it).
func TestDistanceLargeBelowThresholdUnchanged(t *testing.T) {
	rng := randx.New(32)
	dflt := NewSolver()
	off := NewSolver(WithLargeThreshold(-1))
	for trial := 0; trial < 50; trial++ {
		s := randomSig(rng, 2, 1+rng.Intn(40), 1)
		u := randomSig(rng, 2, 1+rng.Intn(40), 1)
		a, err := dflt.Distance(s, u, Euclidean)
		if err != nil {
			t.Fatal(err)
		}
		b, err := off.Distance(s, u, Euclidean)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("trial %d: default-threshold %.17g != large-disabled %.17g below threshold", trial, a, b)
		}
	}
}

// TestDistanceLargePricingBlockInvariantCost checks that the pricing
// block size is a pure throughput knob for the optimal cost: any block
// size must reach the same objective (to rounding).
func TestDistanceLargePricingBlockInvariantCost(t *testing.T) {
	rng := randx.New(33)
	s := randomSig(rng, 3, 60, 1.5)
	u := randomSig(rng, 3, 60, 0.8)
	base, err := NewSolver().DistanceLarge(s, u, Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []int{1, 3, 7, 16, 64, 1024} {
		got, err := NewSolver(WithPricingBlock(b)).DistanceLarge(s, u, Euclidean)
		if err != nil {
			t.Fatalf("block=%d: %v", b, err)
		}
		if math.Abs(got-base) > 1e-9*(1+base) {
			t.Fatalf("block=%d: %.15g vs default-block %.15g", b, got, base)
		}
	}
}

// TestDistanceFlowLargePath checks the flow variant through the large
// path: the flow matrix must satisfy the transportation constraints and
// price out to the returned cost.
func TestDistanceFlowLargePath(t *testing.T) {
	rng := randx.New(34)
	sv := NewSolver(WithLargeThreshold(4)) // force large on small instances
	for trial := 0; trial < 60; trial++ {
		s := randomSig(rng, 2, 4+rng.Intn(10), 1+rng.Float64()*2)
		u := randomSig(rng, 2, 4+rng.Intn(10), 1+rng.Float64()*2)
		res, err := sv.DistanceFlow(s, u, Euclidean)
		if err != nil {
			t.Fatal(err)
		}
		want := referenceEMD(t, s, u, Euclidean)
		if math.Abs(res.EMD-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d: large DistanceFlow EMD %.15g vs reference %.15g", trial, res.EMD, want)
		}
		wantAmount := math.Min(s.TotalWeight(), u.TotalWeight())
		if math.Abs(res.Amount-wantAmount) > 1e-9*(1+wantAmount) {
			t.Fatalf("trial %d: amount %g, want %g", trial, res.Amount, wantAmount)
		}
		// Row sums must not exceed the (filtered) supplies.
		ri := 0
		for _, w := range s.Weights {
			if w <= 0 {
				continue
			}
			sum := 0.0
			for _, f := range res.Flow[ri] {
				if f < 0 {
					t.Fatalf("trial %d: negative flow %g", trial, f)
				}
				sum += f
			}
			if sum > w+1e-6*(1+w) {
				t.Fatalf("trial %d: row %d ships %g > supply %g", trial, ri, sum, w)
			}
			ri++
		}
	}
}

// TestWarmDistanceLargeZeroAllocsK256 is the large-K allocation guard
// of this PR: a warm solver computes K=256 block-pricing distances
// without a single heap allocation, just like the classic path at
// small K (mirrors the PR 1 guarantee at the new scale).
func TestWarmDistanceLargeZeroAllocsK256(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	if testing.Short() {
		t.Skip("K=256 solves are slow under -short")
	}
	rng := randx.New(256)
	s := randomSig(rng, 2, 256, 1)
	u := randomSig(rng, 2, 256, 1)
	sv := NewSolver()
	if _, err := sv.DistanceLarge(s, u, Euclidean); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(3, func() {
		if _, err := sv.DistanceLarge(s, u, Euclidean); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("warm DistanceLarge at K=256: %g allocs/op, want 0", allocs)
	}
}

// TestPrewarmedSolverFirstDistanceLargeZeroAllocs extends the PR 3
// Prewarm guarantee to the block-pricing path: a fresh solver that was
// Prewarmed for the signature size must not allocate even on its FIRST
// large-path distance (per-worker solvers in the tiled pairwise engine
// rely on this at large K).
func TestPrewarmedSolverFirstDistanceLargeZeroAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	if testing.Short() {
		t.Skip("K=256 solves are slow under -short")
	}
	const k = 256
	rng := randx.New(512)
	s := randomSig(rng, 2, k, 1)
	u := randomSig(rng, 2, k, 1)

	const runs = 3
	fresh := make([]*Solver, 0, runs+1)
	for i := 0; i < cap(fresh); i++ {
		sv := NewSolver()
		sv.Prewarm(k)
		fresh = append(fresh, sv)
	}
	next := 0
	if allocs := testing.AllocsPerRun(runs, func() {
		sv := fresh[next]
		next++
		if _, err := sv.Distance(s, u, Euclidean); err != nil { // K=256 auto-selects the large path
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("first auto-large Distance after Prewarm(%d): %g allocs/op, want 0", k, allocs)
	}
}
