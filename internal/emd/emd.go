// Package emd computes the Earth Mover's Distance between signatures
// (§3.2 of the paper, Eq. 7-12; Rubner et al. 2000). The general case is
// solved exactly with the transportation simplex, including the partial
// matching that arises when the two signatures carry different total
// masses (the paper's constraint Eq. 11: total flow equals the smaller
// total). A closed-form fast path handles 1-D signatures with equal
// totals, where EMD coincides with the Wasserstein-1 distance between the
// two step CDFs.
package emd

import (
	"fmt"
	"math"

	"repro/internal/signature"
	"repro/internal/vec"
)

// Ground is a ground distance d_kl between two signature centers.
type Ground func(a, b []float64) float64

// Predefined ground distances.
var (
	// Euclidean is the L2 ground distance (the default).
	Euclidean Ground = vec.Dist2
	// Manhattan is the L1 ground distance.
	Manhattan Ground = vec.Dist1
	// SqEuclidean is the squared L2 ground distance. Note that with this
	// ground EMD is not a metric (triangle inequality fails), but it is a
	// valid dissimilarity accepted by the framework.
	SqEuclidean Ground = vec.SqDist2
	// Chebyshev is the L∞ ground distance.
	Chebyshev Ground = vec.DistInf
)

// Result carries the optimal transportation plan behind an EMD value.
type Result struct {
	// EMD is cost divided by the total moved amount (Eq. 12).
	EMD float64
	// Cost is the objective Σ f*_kl · d_kl of the optimal flow.
	Cost float64
	// Amount is the total flow Σ f*_kl = min(ΣW, ΣW′).
	Amount float64
	// Flow[k][l] is the optimal flow from source center k to sink
	// center l (after dropping zero-weight entries; indices follow the
	// filtered signatures in source/sink order).
	Flow [][]float64
}

// Distance returns EMD(s, t) under the ground distance g. A nil g selects
// Euclidean ground distance and enables the exact 1-D fast path when both
// signatures are one-dimensional with equal total weight.
func Distance(s, t signature.Signature, g Ground) (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, fmt.Errorf("emd: source %w", err)
	}
	if err := t.Validate(); err != nil {
		return 0, fmt.Errorf("emd: sink %w", err)
	}
	if s.Dim() != t.Dim() {
		return 0, fmt.Errorf("emd: dimension mismatch %d vs %d", s.Dim(), t.Dim())
	}
	if g == nil {
		if s.Dim() == 1 && balanced(s, t) {
			return distance1D(s, t), nil
		}
		g = Euclidean
	}
	res, err := DistanceFlow(s, t, g)
	if err != nil {
		return 0, err
	}
	return res.EMD, nil
}

// Distance1D returns the closed-form EMD for two 1-D signatures with
// equal total mass (the Wasserstein-1 distance ∫|F_s − F_t|). It returns
// an error if either signature is not 1-D or the totals differ by more
// than a 1e-9 relative tolerance.
func Distance1D(s, t signature.Signature) (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, fmt.Errorf("emd: source %w", err)
	}
	if err := t.Validate(); err != nil {
		return 0, fmt.Errorf("emd: sink %w", err)
	}
	if s.Dim() != 1 || t.Dim() != 1 {
		return 0, fmt.Errorf("emd: Distance1D needs 1-D signatures, got %d-D and %d-D", s.Dim(), t.Dim())
	}
	if !balanced(s, t) {
		return 0, fmt.Errorf("emd: Distance1D needs equal totals, got %g and %g", s.TotalWeight(), t.TotalWeight())
	}
	return distance1D(s, t), nil
}

func balanced(s, t signature.Signature) bool {
	ws, wt := s.TotalWeight(), t.TotalWeight()
	return math.Abs(ws-wt) <= 1e-9*math.Max(ws, wt)
}

// distance1D merges the two weighted point sets along the line and
// integrates |CDF difference|. Weights are normalized by the (common)
// total so the result equals cost/amount like the simplex path.
func distance1D(s, t signature.Signature) float64 {
	// ev1d.w > 0 contributes to s's CDF, w < 0 to t's.
	events := make([]ev1d, 0, s.Len()+t.Len())
	totS, totT := s.TotalWeight(), t.TotalWeight()
	for i, c := range s.Centers {
		events = append(events, ev1d{c[0], s.Weights[i] / totS})
	}
	for i, c := range t.Centers {
		events = append(events, ev1d{c[0], -t.Weights[i] / totT})
	}
	// Insertion-free sort by x.
	sortEvents(events)
	emd := 0.0
	cdfDiff := 0.0
	for i := 0; i < len(events)-1; i++ {
		cdfDiff += events[i].w
		gap := events[i+1].x - events[i].x
		emd += math.Abs(cdfDiff) * gap
	}
	return emd
}

func sortEvents(events []ev1d) {
	// Simple binary-insertion-backed sort: events lists are small
	// (signature sizes), and sort.Slice would allocate a closure per
	// call in this hot path. Shell sort keeps it allocation-free.
	gaps := []int{701, 301, 132, 57, 23, 10, 4, 1}
	n := len(events)
	for _, gap := range gaps {
		for i := gap; i < n; i++ {
			e := events[i]
			j := i
			for ; j >= gap && events[j-gap].x > e.x; j -= gap {
				events[j] = events[j-gap]
			}
			events[j] = e
		}
	}
}

type ev1d = struct {
	x, w float64
}

// DistanceFlow computes the optimal transportation plan between s and t
// under ground distance g (nil means Euclidean) and returns the full
// Result. Zero-weight signature entries are dropped before solving.
func DistanceFlow(s, t signature.Signature, g Ground) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("emd: source %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("emd: sink %w", err)
	}
	if s.Dim() != t.Dim() {
		return nil, fmt.Errorf("emd: dimension mismatch %d vs %d", s.Dim(), t.Dim())
	}
	if g == nil {
		g = Euclidean
	}
	sc, sw := dropZeros(s)
	tc, tw := dropZeros(t)
	m, n := len(sw), len(tw)

	// Ground cost matrix.
	cost := make([][]float64, m)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			d := g(sc[i], tc[j])
			if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
				return nil, fmt.Errorf("emd: ground distance returned %g", d)
			}
			cost[i][j] = d
		}
	}

	totS, totT := vec.Sum(sw), vec.Sum(tw)
	amount := math.Min(totS, totT)

	// Balance by adding a zero-cost dummy node on the deficient side
	// (Eq. 9-11 allow the larger signature to keep surplus mass unmoved).
	supply := vec.Clone(sw)
	demand := vec.Clone(tw)
	diff := totS - totT
	const relTol = 1e-12
	if diff > relTol*math.Max(totS, totT) {
		// Surplus supply: dummy demand column.
		demand = append(demand, diff)
		for i := range cost {
			cost[i] = append(cost[i], 0)
		}
		n++
	} else if -diff > relTol*math.Max(totS, totT) {
		// Surplus demand: dummy supply row.
		supply = append(supply, -diff)
		row := make([]float64, n)
		cost = append(cost, row)
		m++
	} else if diff != 0 {
		// Negligible imbalance from rounding: absorb into the last entry.
		if diff > 0 {
			demand[n-1] += diff
		} else {
			supply[m-1] -= diff
		}
	}

	flow, totalCost, err := solveTransport(supply, demand, cost)
	if err != nil {
		return nil, err
	}

	// Strip dummy row/column from the reported flow and recompute the
	// cost over real cells only (the dummy contributes zero cost anyway,
	// but the flow matrix should match the filtered signatures).
	realM, realN := len(sw), len(tw)
	outFlow := make([][]float64, realM)
	for i := range outFlow {
		outFlow[i] = flow[i][:realN:realN]
	}
	res := &Result{Cost: totalCost, Amount: amount, Flow: outFlow}
	if amount > 0 {
		res.EMD = totalCost / amount
	}
	return res, nil
}

func dropZeros(s signature.Signature) (centers [][]float64, weights []float64) {
	for i, w := range s.Weights {
		if w <= 0 {
			continue
		}
		centers = append(centers, s.Centers[i])
		weights = append(weights, w)
	}
	return centers, weights
}
