// Package emd computes the Earth Mover's Distance between signatures
// (§3.2 of the paper, Eq. 7-12; Rubner et al. 2000). The general case is
// solved exactly with the transportation simplex, including the partial
// matching that arises when the two signatures carry different total
// masses (the paper's constraint Eq. 11: total flow equals the smaller
// total). A closed-form fast path handles 1-D signatures with equal
// totals, where EMD coincides with the Wasserstein-1 distance between the
// two step CDFs.
//
// The hot path lives in Solver, a reusable workspace that computes
// distances with zero steady-state allocations. Two simplex paths share
// it: the classic full-refill path for small signatures and a
// block-pricing path for large ones (lazy cost rows, shrinking
// candidate refills, rooted basis tree — see large.go), auto-selected
// at DefaultLargeThreshold and forced via Solver.DistanceLarge. The
// package-level Distance/DistanceFlow functions rent Solvers from an
// internal pool and are safe for concurrent use; loops that compute
// many distances from one goroutine should hold their own Solver
// instead.
package emd

import (
	"fmt"
	"math"

	"repro/internal/signature"
	"repro/internal/vec"
)

// Ground is a ground distance d_kl between two signature centers.
type Ground func(a, b []float64) float64

// Predefined ground distances.
var (
	// Euclidean is the L2 ground distance (the default).
	Euclidean Ground = vec.Dist2
	// Manhattan is the L1 ground distance.
	Manhattan Ground = vec.Dist1
	// SqEuclidean is the squared L2 ground distance. Note that with this
	// ground EMD is not a metric (triangle inequality fails), but it is a
	// valid dissimilarity accepted by the framework.
	SqEuclidean Ground = vec.SqDist2
	// Chebyshev is the L∞ ground distance.
	Chebyshev Ground = vec.DistInf
)

// Result carries the optimal transportation plan behind an EMD value.
type Result struct {
	// EMD is cost divided by the total moved amount (Eq. 12).
	EMD float64
	// Cost is the objective Σ f*_kl · d_kl of the optimal flow.
	Cost float64
	// Amount is the total flow Σ f*_kl = min(ΣW, ΣW′).
	Amount float64
	// Flow[k][l] is the optimal flow from source center k to sink
	// center l (after dropping zero-weight entries; indices follow the
	// filtered signatures in source/sink order).
	Flow [][]float64
}

// Distance returns EMD(s, t) under the ground distance g. A nil g selects
// the Euclidean ground distance. When the ground is Euclidean — whether
// selected implicitly by nil or passed explicitly as emd.Euclidean — and
// both signatures are one-dimensional with equal total weight, the exact
// 1-D closed form is used instead of the simplex; any other ground always
// goes through the simplex, even in 1-D.
func Distance(s, t signature.Signature, g Ground) (float64, error) {
	sv := solverPool.Get().(*Solver)
	defer solverPool.Put(sv)
	return sv.Distance(s, t, g)
}

// Distance1D returns the closed-form EMD for two 1-D signatures with
// equal total mass (the Wasserstein-1 distance ∫|F_s − F_t|). It returns
// an error if either signature is not 1-D or the totals differ by more
// than a 1e-9 relative tolerance.
func Distance1D(s, t signature.Signature) (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, fmt.Errorf("emd: source %w", err)
	}
	if err := t.Validate(); err != nil {
		return 0, fmt.Errorf("emd: sink %w", err)
	}
	if s.Dim() != 1 || t.Dim() != 1 {
		return 0, fmt.Errorf("emd: Distance1D needs 1-D signatures, got %d-D and %d-D", s.Dim(), t.Dim())
	}
	ws, wt := s.TotalWeight(), t.TotalWeight()
	if !positiveTotal(ws) || !positiveTotal(wt) {
		return 0, fmt.Errorf("emd: Distance1D needs positive finite totals, got %g and %g", ws, wt)
	}
	if !balanced(s, t) {
		return 0, fmt.Errorf("emd: Distance1D needs equal totals, got %g and %g", ws, wt)
	}
	sv := solverPool.Get().(*Solver)
	defer solverPool.Put(sv)
	return sv.distance1D(s, t), nil
}

// positiveTotal reports whether a signature's total mass is usable by the
// closed-form 1-D path, which divides by it: positive and finite (NaN
// fails every comparison, so it is rejected too).
func positiveTotal(w float64) bool {
	return w > 0 && !math.IsInf(w, 0)
}

// balanced reports whether the two signatures' totals are equal within
// tolerance; see balancedTotals for the zero/NaN guard.
func balanced(s, t signature.Signature) bool {
	return balancedTotals(s.TotalWeight(), t.TotalWeight())
}

// balancedTotals reports whether the two totals are equal within
// tolerance. Zero, NaN, or infinite totals are never balanced: before
// this guard, two zero-total signatures satisfied |0−0| <= 1e-9·0 and
// were routed to the closed form, which would divide by zero and return
// a meaningless value instead of an error. Unusable totals now fall
// through to the simplex path, whose prepare step rejects them properly.
func balancedTotals(ws, wt float64) bool {
	if !positiveTotal(ws) || !positiveTotal(wt) {
		return false
	}
	return math.Abs(ws-wt) <= 1e-9*math.Max(ws, wt)
}

func sortEvents(events []ev1d) {
	// Shell sort: events lists are small (signature sizes), and sort.Slice
	// would allocate a closure per call in this hot path.
	gaps := []int{701, 301, 132, 57, 23, 10, 4, 1}
	n := len(events)
	for _, gap := range gaps {
		for i := gap; i < n; i++ {
			e := events[i]
			j := i
			for ; j >= gap && events[j-gap].x > e.x; j -= gap {
				events[j] = events[j-gap]
			}
			events[j] = e
		}
	}
}

type ev1d = struct {
	x, w float64
}

// DistanceFlow computes the optimal transportation plan between s and t
// under ground distance g (nil means Euclidean) and returns the full
// Result. Zero-weight signature entries are dropped before solving.
func DistanceFlow(s, t signature.Signature, g Ground) (*Result, error) {
	sv := solverPool.Get().(*Solver)
	defer solverPool.Put(sv)
	return sv.DistanceFlow(s, t, g)
}
