package emd

import (
	"fmt"
	"math"
	"reflect"
	"sync"

	"repro/internal/signature"
)

// Solver is a reusable transportation-simplex workspace. All scratch
// state — the flat row-major cost matrix, the basis tree, the MODI
// potentials, and the BFS buffers — is owned by the Solver and recycled
// across calls, so a warm Solver computes EMDs with zero steady-state
// allocations (Distance) or a single output allocation (DistanceFlow).
//
// A Solver is not safe for concurrent use; give each goroutine its own
// (the package-level Distance/DistanceFlow functions rent Solvers from a
// sync.Pool and remain safe to call from anywhere).
type Solver struct {
	// Filtered problem: indices of the >0-weight entries of each input.
	srcIdx, dstIdx []int
	supply, demand []float64

	// Problem dimensions including the balancing dummy row/column.
	m, n int
	// cost is the m×n ground-cost matrix, row-major with stride n.
	cost    []float64
	maxCost float64
	// eps is the Charnes perturbation applied by the last solve; flows at
	// or below eps·(m+n)·4 are perturbation residue, not real transport.
	eps float64

	// Basis: exactly m+n−1 cells (i, j, flow).
	basisI, basisJ []int
	basisF         []float64

	// Basis-tree adjacency as intrusive linked lists over basis entries.
	rowHead, colHead []int // first basis index per row/col, −1 if none
	rowNext, colNext []int // next basis index in the same row/col

	// MODI potentials and their solved-flags.
	u, v       []float64
	uSet, vSet []bool

	// BFS scratch for potentials and cycle search over the m+n tree nodes.
	queue   []int
	parent  []int // basis index used to reach each node
	visited []bool
	path    []int

	// Per-row pricing candidates: cand[i] is the column of the most
	// negative cell seen in row i at the last refill scan, −1 if none.
	cand []int

	// Scratch for the 1-D closed-form fast path.
	events []ev1d
}

// NewSolver returns an empty Solver; buffers grow on first use and are
// retained for subsequent calls.
func NewSolver() *Solver { return &Solver{} }

// Prewarm grows every scratch buffer the solver needs for transportation
// problems with up to k sources and k sinks (plus the balancing dummy
// row/column), and the event buffer of the 1-D closed-form path, so even
// the solver's FIRST Distance call runs without allocating. Batch
// drivers that hand one Solver to each worker (e.g. the tiled pairwise
// matrix) call Prewarm(maxSignatureLen) once per worker instead of
// paying the growth allocations lazily inside the timed region. k <= 0
// is a no-op; Prewarm never shrinks.
func (sv *Solver) Prewarm(k int) {
	if k <= 0 {
		return
	}
	m := k + 1 // + dummy row
	n := k + 1 // + dummy column
	nb := m + n - 1
	sv.srcIdx = growInts(sv.srcIdx, k)
	sv.dstIdx = growInts(sv.dstIdx, k)
	sv.supply = growFloats(sv.supply, m)
	sv.demand = growFloats(sv.demand, n)
	sv.cost = growFloats(sv.cost, m*n)
	sv.basisI = growInts(sv.basisI, nb)
	sv.basisJ = growInts(sv.basisJ, nb)
	sv.basisF = growFloats(sv.basisF, nb)
	sv.rowHead = growInts(sv.rowHead, m)
	sv.colHead = growInts(sv.colHead, n)
	sv.rowNext = growInts(sv.rowNext, nb)
	sv.colNext = growInts(sv.colNext, nb)
	sv.u = growFloats(sv.u, m)
	sv.v = growFloats(sv.v, n)
	sv.uSet = growBools(sv.uSet, m)
	sv.vSet = growBools(sv.vSet, n)
	if cap(sv.queue) < m+n {
		sv.queue = make([]int, 0, m+n)
	}
	sv.parent = growInts(sv.parent, m+n)
	sv.visited = growBools(sv.visited, m+n)
	if cap(sv.path) < nb {
		sv.path = make([]int, 0, nb)
	}
	sv.cand = growInts(sv.cand, m)
	if cap(sv.events) < 2*k {
		sv.events = make([]ev1d, 2*k)
	}
}

var solverPool = sync.Pool{New: func() any { return NewSolver() }}

// euclideanPtr identifies the Euclidean ground function so Distance can
// take the exact 1-D closed form even when the caller passes emd.Euclidean
// explicitly rather than nil.
var euclideanPtr = reflect.ValueOf(Euclidean).Pointer()

// euclideanGround reports whether g selects the Euclidean ground distance
// (nil defaults to Euclidean).
func euclideanGround(g Ground) bool {
	return g == nil || reflect.ValueOf(g).Pointer() == euclideanPtr
}

// Distance returns EMD(s, t) under ground distance g (nil means
// Euclidean). It is the no-flow variant: the transportation problem is
// solved on the Solver's scratch buffers and the optimal flow matrix is
// never materialized. When both signatures are 1-D with equal total
// weight and the ground is Euclidean (nil or explicit), the exact
// closed-form Wasserstein-1 fast path is used instead of the simplex.
func (sv *Solver) Distance(s, t signature.Signature, g Ground) (float64, error) {
	if err := validatePair(s, t); err != nil {
		return 0, err
	}
	return sv.distance(s, t, g)
}

// DistanceValidated is Distance minus the per-call input validation, for
// batch drivers that have already run signature.Validate on every input
// and checked that the dimensions match (the tiled pairwise matrix
// validates each of its n signatures once instead of 2(n−1) times).
// The computed value is bit-identical to Distance; passing inputs that
// would not survive Distance's validation is undefined behaviour (e.g.
// negative weights are silently dropped rather than rejected).
func (sv *Solver) DistanceValidated(s, t signature.Signature, g Ground) (float64, error) {
	return sv.distance(s, t, g)
}

// distance dispatches a validated pair onto the closed form or the
// simplex.
func (sv *Solver) distance(s, t signature.Signature, g Ground) (float64, error) {
	if s.Dim() == 1 && euclideanGround(g) {
		ws, wt := s.TotalWeight(), t.TotalWeight()
		if balancedTotals(ws, wt) {
			return sv.distance1DTotals(s, t, ws, wt), nil
		}
	}
	if g == nil {
		g = Euclidean
	}
	amount, err := sv.prepare(s, t, g)
	if err != nil {
		return 0, err
	}
	totalCost, err := sv.solve()
	if err != nil {
		return 0, err
	}
	if amount <= 0 {
		return 0, nil
	}
	return totalCost / amount, nil
}

// DistanceFlow computes the optimal transportation plan between s and t
// under ground distance g (nil means Euclidean) and returns the full
// Result. Zero-weight signature entries are dropped before solving; Flow
// indices follow the filtered signatures. Only the returned flow matrix
// is freshly allocated; all solver state is reused.
func (sv *Solver) DistanceFlow(s, t signature.Signature, g Ground) (*Result, error) {
	if err := validatePair(s, t); err != nil {
		return nil, err
	}
	if g == nil {
		g = Euclidean
	}
	amount, err := sv.prepare(s, t, g)
	if err != nil {
		return nil, err
	}
	totalCost, err := sv.solve()
	if err != nil {
		return nil, err
	}
	// Materialize the flow over the real (filtered, non-dummy) cells.
	realM, realN := len(sv.srcIdx), len(sv.dstIdx)
	flow := make([][]float64, realM)
	cells := make([]float64, realM*realN)
	for i := range flow {
		flow[i] = cells[i*realN : (i+1)*realN : (i+1)*realN]
	}
	clamp := sv.flowClamp()
	for k := range sv.basisF {
		f := sv.basisF[k]
		if f <= clamp {
			continue
		}
		i, j := sv.basisI[k], sv.basisJ[k]
		if i < realM && j < realN {
			flow[i][j] = f
		}
	}
	res := &Result{Cost: totalCost, Amount: amount, Flow: flow}
	if amount > 0 {
		res.EMD = totalCost / amount
	}
	return res, nil
}

func validatePair(s, t signature.Signature) error {
	if err := s.Validate(); err != nil {
		return fmt.Errorf("emd: source %w", err)
	}
	if err := t.Validate(); err != nil {
		return fmt.Errorf("emd: sink %w", err)
	}
	if s.Dim() != t.Dim() {
		return fmt.Errorf("emd: dimension mismatch %d vs %d", s.Dim(), t.Dim())
	}
	return nil
}

// distance1D is the closed-form balanced 1-D path on reusable buffers.
func (sv *Solver) distance1D(s, t signature.Signature) float64 {
	return sv.distance1DTotals(s, t, s.TotalWeight(), t.TotalWeight())
}

// distance1DTotals is distance1D with the (already summed) totals passed
// in: the dispatch computes them for the balance check, and re-summing
// the same weights would produce the identical floats anyway — this just
// skips two O(K) sweeps per pair on the hot path.
func (sv *Solver) distance1DTotals(s, t signature.Signature, totS, totT float64) float64 {
	ln := s.Len() + t.Len()
	if cap(sv.events) < ln {
		sv.events = make([]ev1d, ln)
	}
	events := sv.events[:ln]
	for i, c := range s.Centers {
		events[i] = ev1d{c[0], s.Weights[i] / totS}
	}
	off := s.Len()
	for i, c := range t.Centers {
		events[off+i] = ev1d{c[0], -t.Weights[i] / totT}
	}
	sortEvents(events)
	emdVal := 0.0
	cdfDiff := 0.0
	for i := 0; i < len(events)-1; i++ {
		cdfDiff += events[i].w
		gap := events[i+1].x - events[i].x
		emdVal += math.Abs(cdfDiff) * gap
	}
	return emdVal
}

// prepare filters zero-weight entries, builds the flat cost matrix and the
// supply/demand vectors (balancing with a zero-cost dummy node on the
// deficient side, Eq. 9-11), and returns the total moved amount
// min(ΣW, ΣW′).
func (sv *Solver) prepare(s, t signature.Signature, g Ground) (float64, error) {
	sv.srcIdx = sv.srcIdx[:0]
	totS := 0.0
	for i, w := range s.Weights {
		if w > 0 {
			sv.srcIdx = append(sv.srcIdx, i)
			totS += w
		}
	}
	sv.dstIdx = sv.dstIdx[:0]
	totT := 0.0
	for j, w := range t.Weights {
		if w > 0 {
			sv.dstIdx = append(sv.dstIdx, j)
			totT += w
		}
	}
	m0, n0 := len(sv.srcIdx), len(sv.dstIdx)
	if m0 == 0 || n0 == 0 {
		return 0, fmt.Errorf("emd: empty transportation problem (%dx%d)", m0, n0)
	}
	amount := math.Min(totS, totT)

	// Decide the dummy before building the matrix so it can be laid out
	// flat in one pass.
	m, n := m0, n0
	diff := totS - totT
	const relTol = 1e-12
	dummyCol := diff > relTol*math.Max(totS, totT)
	dummyRow := -diff > relTol*math.Max(totS, totT)
	if dummyCol {
		n++
	} else if dummyRow {
		m++
	}
	sv.m, sv.n = m, n

	sv.cost = growFloats(sv.cost, m*n)
	maxCost := 0.0
	for i := 0; i < m0; i++ {
		ci := s.Centers[sv.srcIdx[i]]
		row := sv.cost[i*n : (i+1)*n]
		for j := 0; j < n0; j++ {
			d := g(ci, t.Centers[sv.dstIdx[j]])
			if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
				return 0, fmt.Errorf("emd: ground distance returned %g", d)
			}
			row[j] = d
			if d > maxCost {
				maxCost = d
			}
		}
		if dummyCol {
			row[n0] = 0
		}
	}
	if dummyRow {
		row := sv.cost[m0*n : (m0+1)*n]
		for j := range row {
			row[j] = 0
		}
	}
	sv.maxCost = maxCost

	sv.supply = growFloats(sv.supply, m)
	sv.demand = growFloats(sv.demand, n)
	for i := 0; i < m0; i++ {
		sv.supply[i] = s.Weights[sv.srcIdx[i]]
	}
	for j := 0; j < n0; j++ {
		sv.demand[j] = t.Weights[sv.dstIdx[j]]
	}
	switch {
	case dummyCol:
		sv.demand[n0] = diff
	case dummyRow:
		sv.supply[m0] = -diff
	case diff > 0:
		// Negligible imbalance from rounding: absorb into the last entry.
		sv.demand[n0-1] += diff
	case diff < 0:
		sv.supply[m0-1] -= diff
	}
	return amount, nil
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

func growInts(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int, n)
}

func growBools(s []bool, n int) []bool {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]bool, n)
}

// flowClamp is the threshold under which a basic flow is considered pure
// Charnes-perturbation residue.
func (sv *Solver) flowClamp() float64 {
	return sv.eps * float64(sv.m+sv.n) * 4
}
