package emd

import (
	"fmt"
	"math"
	"reflect"
	"sync"

	"repro/internal/signature"
)

// DefaultLargeThreshold is the signature size (max of the two lengths)
// at which Distance auto-selects the block-pricing large path: below it
// the classic full-refill pricing is used bit-for-bit unchanged, at or
// above it the solver switches to cyclic block pricing over a lazily
// computed cost matrix. Override per Solver with WithLargeThreshold.
const DefaultLargeThreshold = 128

// DefaultPricingBlock is the number of consecutive cost-matrix rows one
// pricing block covers on the large path. A refill scans blocks
// cyclically from where the previous refill stopped and stops at the
// first block that yields a candidate, so the steady-state refill cost
// is O(block·n) instead of the classic O(m·n) full sweep. Override per
// Solver with WithPricingBlock.
const DefaultPricingBlock = 16

// A SolverOption configures a Solver at construction.
type SolverOption func(*Solver)

// WithLargeThreshold sets the signature size at which Distance switches
// to the block-pricing large path: 0 keeps DefaultLargeThreshold, a
// negative value disables automatic selection (DistanceLarge still
// forces the path explicitly), and any positive value is the threshold.
//
// Both paths solve the same transportation problem exactly, so the
// optimal cost agrees to rounding (the conformance suite asserts 1e-9),
// but degenerate instances admit multiple optimal bases and the two
// pricing orders may settle on different ones — the returned distances
// can differ in the last bits. Pipelines that promise bit-identical
// output across runs must therefore use the same threshold on every
// run (the engine snapshot fingerprint records it).
func WithLargeThreshold(k int) SolverOption {
	return func(sv *Solver) { sv.largeK = k }
}

// WithPricingBlock sets the number of rows per pricing block on the
// large path (0 keeps DefaultPricingBlock). Like the threshold, the
// block size selects which optimal basis degenerate instances settle
// on, so it must be held fixed where bit-identity is promised.
func WithPricingBlock(rows int) SolverOption {
	return func(sv *Solver) {
		if rows > 0 {
			sv.priceB = rows
		}
	}
}

// WithCostCache attaches a fresh ground-cost cache with the given number
// of slots at construction (<= 0 selects DefaultCostCacheSlots). Unlike
// the threshold and block-size knobs, caching is bit-transparent —
// every solve produces the identical floats with the cache on or off —
// so it never participates in snapshot fingerprints.
//
// Caching requires the ground function to be pure and identified by its
// code pointer: two closures sharing code but capturing different state
// (e.g. from a scaled-metric factory) look identical to the cache and
// would share entries, yielding wrong distances. Pass package-level
// functions, or a distinct function per parameterization.
func WithCostCache(slots int) SolverOption {
	return func(sv *Solver) { sv.cache = NewCostCache(slots) }
}

// SetCostCache attaches c to the solver — every subsequent solve
// (Distance, DistanceValidated, DistanceLarge, DistanceFlow,
// DistanceCached) consults it. Passing nil detaches caching. Batch
// drivers that Prewarm share nothing: the cache, like the solver, must
// be per-worker.
func (sv *Solver) SetCostCache(c *CostCache) { sv.cache = c }

// CostCache returns the attached cache, nil if none.
func (sv *Solver) CostCache() *CostCache { return sv.cache }

// Solver is a reusable transportation-simplex workspace. All scratch
// state — the flat row-major cost matrix, the basis tree, the MODI
// potentials, and the BFS buffers — is owned by the Solver and recycled
// across calls, so a warm Solver computes EMDs with zero steady-state
// allocations (Distance) or a single output allocation (DistanceFlow).
//
// Two simplex paths share the workspace. The classic path (small
// signatures) materializes the full cost matrix up front and refills
// its per-row pricing candidates with a full O(m·n) sweep. The large
// path (block pricing, selected automatically at DefaultLargeThreshold
// or forced via DistanceLarge) computes cost rows lazily as pricing
// first touches them and refills candidates one block of rows at a
// time, resuming where the previous refill stopped.
//
// A Solver is not safe for concurrent use; give each goroutine its own
// (the package-level Distance/DistanceFlow functions rent Solvers from a
// sync.Pool and remain safe to call from anywhere).
type Solver struct {
	// Filtered problem: indices of the >0-weight entries of each input.
	srcIdx, dstIdx []int
	supply, demand []float64

	// Problem dimensions including the balancing dummy row/column.
	m, n int
	// cost is the m×n ground-cost matrix, row-major with stride n.
	cost    []float64
	maxCost float64
	// eps is the Charnes perturbation applied by the last solve; flows at
	// or below eps·(m+n)·4 are perturbation residue, not real transport.
	eps float64

	// Basis: exactly m+n−1 cells (i, j, flow).
	basisI, basisJ []int
	basisF         []float64

	// Basis-tree adjacency as intrusive linked lists over basis entries.
	rowHead, colHead []int // first basis index per row/col, −1 if none
	rowNext, colNext []int // next basis index in the same row/col

	// MODI potentials and their solved-flags.
	u, v       []float64
	uSet, vSet []bool

	// BFS scratch for potentials and cycle search over the m+n tree nodes.
	queue   []int
	parent  []int // basis index used to reach each node
	visited []bool
	path    []int

	// Per-row pricing candidates: cand[i] is the column of the most
	// negative cell seen in row i at the last refill scan, −1 if none.
	cand []int

	// Scratch for the 1-D closed-form fast path.
	events []ev1d

	// --- Large-signature (block-pricing) path ---------------------------

	// Configuration: auto-select threshold (0 = DefaultLargeThreshold,
	// < 0 = never) and rows per pricing block (0 = DefaultPricingBlock).
	largeK int
	priceB int

	// Lazy cost-matrix state: the ground function and the filtered
	// center views it is evaluated over, per-row computed flags, the
	// real (non-dummy) column count, and whether a dummy column exists.
	// cost rows are filled on first touch by a pricing block; basis-cell
	// costs are carried separately in basisC so building the initial
	// basis never forces whole rows.
	lazyG        Ground
	lazySrcC     [][]float64
	lazyDstC     [][]float64
	rowReady     []bool
	lazyN0       int
	lazyDummyCol bool

	// basisC[k] is the ground cost of basis cell k (large path only);
	// potentials and the objective read it instead of the cost matrix.
	basisC []float64

	// blockCur is the pricing-block cursor: the next refill resumes
	// scanning at this block, wrapping around, and only a refill that
	// sweeps every block without finding a candidate proves optimality.
	blockCur int

	// Rooted basis-tree structure (large path only): parent node and
	// connecting basis arc per tree node (rows are nodes [0,m), columns
	// [m,m+n)), plus BFS depth. Maintained incrementally per pivot so a
	// pivot costs O(cycle + detached subtree) instead of two O(m+n)
	// whole-tree sweeps.
	parentNode []int
	parentArc  []int
	depth      []int
	// Cycle scratch: the entering cell's two tree-path halves.
	cycA, cycB []int

	// --- Cost amortization (CostCache) ----------------------------------

	// cache is the attached ground-cost cache (nil = no caching). cEnt is
	// the entry checked out for the in-flight large-path solve; the
	// classic path completes eagerly and never holds one across calls.
	cache *CostCache
	cEnt  *costEntry

	// Per-block candidate queues (large path): blkQ holds nblk segments
	// of bsz packed (i<<32 | j) cells each, blkQn the live count per
	// block, qCur the cyclic drain cursor. Candidates priced by a refill
	// but not pivoted are retained here instead of being rediscovered by
	// the next refill sweep; qCur rotates ties toward the
	// least-recently-served block (Cunningham-style anti-cycling).
	blkQ  []int64
	blkQn []int
	qCur  int

	// Per-solve pivot/refill-row counters, reset by both solve paths.
	// They cost two increments per pivot and feed Stats (the solverscale
	// experiment reports them; tests use them to assert the large path
	// actually scans fewer cells).
	statPivots     int
	statRefillRows int

	// Cost-amortization counters, reset by stageProblem / the 1-D closed
	// form and published into the process-wide totals when the solve
	// returns: ground evaluations performed, cost cells served from /
	// stored into the cache, and pivots served from the retained
	// candidate queues without a refill.
	statGroundEvals int
	statCacheHits   int
	statCacheMisses int
	statCandReuse   int
}

// SolverStats reports how the last solve spent its time: simplex pivots
// performed and candidate-refill rows scanned (each refill row prices n
// cells, so refillRows·n is the total pricing work). The 1-D closed
// form reports zeros.
type SolverStats struct {
	Pivots     int
	RefillRows int
	// GroundEvals counts ground-distance evaluations actually performed
	// (cache hits are not evaluations).
	GroundEvals int
	// CacheHits / CacheMisses count cost cells served from / stored into
	// the attached CostCache; both are zero when no cache is attached.
	CacheHits   int
	CacheMisses int
	// CandReuse counts pivots on the large path that were served from the
	// retained per-block candidate queues without any refill scan.
	CandReuse int
}

// Stats returns the counters of the last Distance/DistanceFlow call.
func (sv *Solver) Stats() SolverStats {
	return SolverStats{
		Pivots:      sv.statPivots,
		RefillRows:  sv.statRefillRows,
		GroundEvals: sv.statGroundEvals,
		CacheHits:   sv.statCacheHits,
		CacheMisses: sv.statCacheMisses,
		CandReuse:   sv.statCandReuse,
	}
}

// NewSolver returns an empty Solver; buffers grow on first use and are
// retained for subsequent calls.
func NewSolver(opts ...SolverOption) *Solver {
	sv := &Solver{}
	for _, o := range opts {
		o(sv)
	}
	return sv
}

// Prewarm grows every scratch buffer the solver needs for transportation
// problems with up to k sources and k sinks (plus the balancing dummy
// row/column), and the event buffer of the 1-D closed-form path, so even
// the solver's FIRST Distance call runs without allocating. Batch
// drivers that hand one Solver to each worker (e.g. the tiled pairwise
// matrix) call Prewarm(maxSignatureLen) once per worker instead of
// paying the growth allocations lazily inside the timed region. k <= 0
// is a no-op; Prewarm never shrinks.
func (sv *Solver) Prewarm(k int) {
	if k <= 0 {
		return
	}
	m := k + 1 // + dummy row
	n := k + 1 // + dummy column
	nb := m + n - 1
	sv.srcIdx = growInts(sv.srcIdx, k)
	sv.dstIdx = growInts(sv.dstIdx, k)
	sv.supply = growFloats(sv.supply, m)
	sv.demand = growFloats(sv.demand, n)
	sv.cost = growFloats(sv.cost, m*n)
	sv.basisI = growInts(sv.basisI, nb)
	sv.basisJ = growInts(sv.basisJ, nb)
	sv.basisF = growFloats(sv.basisF, nb)
	sv.rowHead = growInts(sv.rowHead, m)
	sv.colHead = growInts(sv.colHead, n)
	sv.rowNext = growInts(sv.rowNext, nb)
	sv.colNext = growInts(sv.colNext, nb)
	sv.u = growFloats(sv.u, m)
	sv.v = growFloats(sv.v, n)
	sv.uSet = growBools(sv.uSet, m)
	sv.vSet = growBools(sv.vSet, n)
	if cap(sv.queue) < m+n {
		sv.queue = make([]int, 0, m+n)
	}
	sv.parent = growInts(sv.parent, m+n)
	sv.visited = growBools(sv.visited, m+n)
	if cap(sv.path) < nb {
		sv.path = make([]int, 0, nb)
	}
	sv.cand = growInts(sv.cand, m)
	if cap(sv.events) < 2*k {
		sv.events = make([]ev1d, 2*k)
	}
	// Large-path scratch: per-row lazy-fill flags, basis-cell costs, the
	// filtered center views, and the rooted basis-tree arrays, so even
	// the first DistanceLarge call on a prewarmed solver is
	// allocation-free.
	sv.rowReady = growBools(sv.rowReady, m)
	sv.basisC = growFloats(sv.basisC, nb)
	sv.lazySrcC = growCenters(sv.lazySrcC, k)
	sv.lazyDstC = growCenters(sv.lazyDstC, k)
	sv.parentNode = growInts(sv.parentNode, m+n)
	sv.parentArc = growInts(sv.parentArc, m+n)
	sv.depth = growInts(sv.depth, m+n)
	if cap(sv.cycA) < nb {
		sv.cycA = make([]int, 0, nb)
	}
	if cap(sv.cycB) < nb {
		sv.cycB = make([]int, 0, nb)
	}
	// Candidate-queue segments: one bsz-capacity queue per pricing block.
	bsz := sv.priceB
	if bsz <= 0 {
		bsz = DefaultPricingBlock
	}
	nblk := (m + bsz - 1) / bsz
	sv.blkQ = growInt64s(sv.blkQ, nblk*bsz)
	sv.blkQn = growInts(sv.blkQn, nblk)
	// An attached cache is prewarmed with a 3-dimensional-center margin
	// (covers every center dimensionality this repo ships; higher-dim
	// workloads should CostCache.Prewarm(k, dim) directly).
	if sv.cache != nil {
		sv.cache.Prewarm(k, 3)
	}
}

var solverPool = sync.Pool{New: func() any { return NewSolver() }}

// euclideanPtr identifies the Euclidean ground function so Distance can
// take the exact 1-D closed form even when the caller passes emd.Euclidean
// explicitly rather than nil.
var euclideanPtr = reflect.ValueOf(Euclidean).Pointer()

// euclideanGround reports whether g selects the Euclidean ground distance
// (nil defaults to Euclidean).
func euclideanGround(g Ground) bool {
	return g == nil || reflect.ValueOf(g).Pointer() == euclideanPtr
}

// Distance returns EMD(s, t) under ground distance g (nil means
// Euclidean). It is the no-flow variant: the transportation problem is
// solved on the Solver's scratch buffers and the optimal flow matrix is
// never materialized. When both signatures are 1-D with equal total
// weight and the ground is Euclidean (nil or explicit), the exact
// closed-form Wasserstein-1 fast path is used instead of the simplex.
func (sv *Solver) Distance(s, t signature.Signature, g Ground) (float64, error) {
	if err := validatePair(s, t); err != nil {
		return 0, err
	}
	return sv.distance(s, t, g)
}

// DistanceValidated is Distance minus the per-call input validation, for
// batch drivers that have already run signature.Validate on every input
// and checked that the dimensions match (the tiled pairwise matrix
// validates each of its n signatures once instead of 2(n−1) times).
// The computed value is bit-identical to Distance; passing inputs that
// would not survive Distance's validation is undefined behaviour (e.g.
// negative weights are silently dropped rather than rejected).
func (sv *Solver) DistanceValidated(s, t signature.Signature, g Ground) (float64, error) {
	return sv.distance(s, t, g)
}

// DistanceCached is Distance with ground-cost caching guaranteed on: if
// no CostCache is attached yet, a DefaultCostCacheSlots cache is created
// and attached first, then the call proceeds exactly as Distance. The
// returned floats are bit-identical to an uncached Distance on the same
// inputs — the cache stores the exact values the ground function
// returned and the solver replays the identical comparison sequence —
// so callers may mix DistanceCached and Distance freely. The win is on
// repeats: once a support pair's cost rows are cached, re-solves of the
// same supports (the detector window, histogram/grid builders, pairwise
// tiles) skip every ground evaluation, including the O(m+n) NW-corner
// basis costs.
//
// Because caching is auto-attached here, g must be pure: the cache keys
// the ground by its code pointer, so closures that share code but
// capture different state (a scaled-metric factory, say) would silently
// share entries and return wrong distances. Pass package-level
// functions; for parameterized grounds use Distance, or a distinct
// function per parameterization.
func (sv *Solver) DistanceCached(s, t signature.Signature, g Ground) (float64, error) {
	if err := validatePair(s, t); err != nil {
		return 0, err
	}
	if sv.cache == nil {
		sv.cache = NewCostCache(0)
	}
	return sv.distance(s, t, g)
}

// largeEligible reports whether Distance auto-selects the block-pricing
// path for this pair: either signature at or above the threshold. The
// raw lengths (not the zero-weight-filtered sizes) decide, so the
// choice is a cheap, predictable function of the inputs.
func (sv *Solver) largeEligible(s, t signature.Signature) bool {
	th := sv.largeK
	if th == 0 {
		th = DefaultLargeThreshold
	}
	if th < 0 {
		return false
	}
	return s.Len() >= th || t.Len() >= th
}

// distance dispatches a validated pair onto the closed form or one of
// the two simplex paths.
func (sv *Solver) distance(s, t signature.Signature, g Ground) (float64, error) {
	defer sv.publishStats()
	if s.Dim() == 1 && euclideanGround(g) {
		ws, wt := s.TotalWeight(), t.TotalWeight()
		if balancedTotals(ws, wt) {
			return sv.distance1DTotals(s, t, ws, wt), nil
		}
	}
	if g == nil {
		g = Euclidean
	}
	if sv.largeEligible(s, t) {
		return sv.simplexLarge(s, t, g)
	}
	amount, err := sv.prepare(s, t, g)
	if err != nil {
		return 0, err
	}
	totalCost, err := sv.solve()
	if err != nil {
		return 0, err
	}
	if amount <= 0 {
		return 0, nil
	}
	return totalCost / amount, nil
}

// DistanceLarge is Distance with the block-pricing large-signature path
// forced regardless of the solver's threshold. The exact 1-D
// closed-form fast path still applies (it is cheaper and exact at any
// size); only the simplex route changes. Use it when signatures hover
// below the auto-select threshold but the workload is known to be
// refill-bound, or to pin the pricing strategy in differential tests.
func (sv *Solver) DistanceLarge(s, t signature.Signature, g Ground) (float64, error) {
	if err := validatePair(s, t); err != nil {
		return 0, err
	}
	defer sv.publishStats()
	if s.Dim() == 1 && euclideanGround(g) {
		ws, wt := s.TotalWeight(), t.TotalWeight()
		if balancedTotals(ws, wt) {
			return sv.distance1DTotals(s, t, ws, wt), nil
		}
	}
	if g == nil {
		g = Euclidean
	}
	return sv.simplexLarge(s, t, g)
}

// simplexLarge runs the block-pricing simplex on a validated pair.
func (sv *Solver) simplexLarge(s, t signature.Signature, g Ground) (float64, error) {
	amount, err := sv.prepareLarge(s, t, g)
	if err != nil {
		return 0, err
	}
	totalCost, err := sv.solveLarge()
	if err != nil {
		return 0, err
	}
	if amount <= 0 {
		return 0, nil
	}
	return totalCost / amount, nil
}

// DistanceFlow computes the optimal transportation plan between s and t
// under ground distance g (nil means Euclidean) and returns the full
// Result. Zero-weight signature entries are dropped before solving; Flow
// indices follow the filtered signatures. Only the returned flow matrix
// is freshly allocated; all solver state is reused.
func (sv *Solver) DistanceFlow(s, t signature.Signature, g Ground) (*Result, error) {
	if err := validatePair(s, t); err != nil {
		return nil, err
	}
	defer sv.publishStats()
	if g == nil {
		g = Euclidean
	}
	var amount, totalCost float64
	var err error
	if sv.largeEligible(s, t) {
		// The flow extraction below only reads the basis, which both
		// simplex paths leave in the same buffers.
		amount, err = sv.prepareLarge(s, t, g)
		if err == nil {
			totalCost, err = sv.solveLarge()
		}
	} else {
		amount, err = sv.prepare(s, t, g)
		if err == nil {
			totalCost, err = sv.solve()
		}
	}
	if err != nil {
		return nil, err
	}
	// Materialize the flow over the real (filtered, non-dummy) cells.
	realM, realN := len(sv.srcIdx), len(sv.dstIdx)
	flow := make([][]float64, realM)
	cells := make([]float64, realM*realN)
	for i := range flow {
		flow[i] = cells[i*realN : (i+1)*realN : (i+1)*realN]
	}
	clamp := sv.flowClamp()
	for k := range sv.basisF {
		f := sv.basisF[k]
		if f <= clamp {
			continue
		}
		i, j := sv.basisI[k], sv.basisJ[k]
		if i < realM && j < realN {
			flow[i][j] = f
		}
	}
	res := &Result{Cost: totalCost, Amount: amount, Flow: flow}
	if amount > 0 {
		res.EMD = totalCost / amount
	}
	return res, nil
}

func validatePair(s, t signature.Signature) error {
	if err := s.Validate(); err != nil {
		return fmt.Errorf("emd: source %w", err)
	}
	if err := t.Validate(); err != nil {
		return fmt.Errorf("emd: sink %w", err)
	}
	if s.Dim() != t.Dim() {
		return fmt.Errorf("emd: dimension mismatch %d vs %d", s.Dim(), t.Dim())
	}
	return nil
}

// distance1D is the closed-form balanced 1-D path on reusable buffers.
func (sv *Solver) distance1D(s, t signature.Signature) float64 {
	return sv.distance1DTotals(s, t, s.TotalWeight(), t.TotalWeight())
}

// distance1DTotals is distance1D with the (already summed) totals passed
// in: the dispatch computes them for the balance check, and re-summing
// the same weights would produce the identical floats anyway — this just
// skips two O(K) sweeps per pair on the hot path.
func (sv *Solver) distance1DTotals(s, t signature.Signature, totS, totT float64) float64 {
	sv.statPivots, sv.statRefillRows = 0, 0
	sv.statGroundEvals, sv.statCacheHits, sv.statCacheMisses, sv.statCandReuse = 0, 0, 0, 0
	ln := s.Len() + t.Len()
	if cap(sv.events) < ln {
		sv.events = make([]ev1d, ln)
	}
	events := sv.events[:ln]
	for i, c := range s.Centers {
		events[i] = ev1d{c[0], s.Weights[i] / totS}
	}
	off := s.Len()
	for i, c := range t.Centers {
		events[off+i] = ev1d{c[0], -t.Weights[i] / totT}
	}
	sortEvents(events)
	emdVal := 0.0
	cdfDiff := 0.0
	for i := 0; i < len(events)-1; i++ {
		cdfDiff += events[i].w
		gap := events[i+1].x - events[i].x
		emdVal += math.Abs(cdfDiff) * gap
	}
	return emdVal
}

// stageProblem filters zero-weight entries, decides the balancing dummy
// (a zero-cost node on the deficient side, Eq. 9-11), sets the problem
// dimensions, and stages the supply/demand vectors. It is the shared
// front half of the eager (prepare) and lazy (prepareLarge) paths and
// returns the total moved amount min(ΣW, ΣW′) plus the filtered sizes
// and dummy placement the cost-matrix half needs.
func (sv *Solver) stageProblem(s, t signature.Signature) (amount float64, m0, n0 int, dummyRow, dummyCol bool, err error) {
	// Reset the amortization counters here rather than in the simplex
	// stages: prepare/prepareLarge perform ground evaluations (and cache
	// traffic) before any stage function runs.
	sv.statGroundEvals, sv.statCacheHits, sv.statCacheMisses, sv.statCandReuse = 0, 0, 0, 0
	sv.srcIdx = sv.srcIdx[:0]
	totS := 0.0
	for i, w := range s.Weights {
		if w > 0 {
			sv.srcIdx = append(sv.srcIdx, i)
			totS += w
		}
	}
	sv.dstIdx = sv.dstIdx[:0]
	totT := 0.0
	for j, w := range t.Weights {
		if w > 0 {
			sv.dstIdx = append(sv.dstIdx, j)
			totT += w
		}
	}
	m0, n0 = len(sv.srcIdx), len(sv.dstIdx)
	if m0 == 0 || n0 == 0 {
		return 0, 0, 0, false, false, fmt.Errorf("emd: empty transportation problem (%dx%d)", m0, n0)
	}
	amount = math.Min(totS, totT)

	// Decide the dummy before building the matrix so it can be laid out
	// flat in one pass.
	m, n := m0, n0
	diff := totS - totT
	const relTol = 1e-12
	dummyCol = diff > relTol*math.Max(totS, totT)
	dummyRow = -diff > relTol*math.Max(totS, totT)
	if dummyCol {
		n++
	} else if dummyRow {
		m++
	}
	sv.m, sv.n = m, n

	sv.supply = growFloats(sv.supply, m)
	sv.demand = growFloats(sv.demand, n)
	for i := 0; i < m0; i++ {
		sv.supply[i] = s.Weights[sv.srcIdx[i]]
	}
	for j := 0; j < n0; j++ {
		sv.demand[j] = t.Weights[sv.dstIdx[j]]
	}
	switch {
	case dummyCol:
		sv.demand[n0] = diff
	case dummyRow:
		sv.supply[m0] = -diff
	case diff > 0:
		// Negligible imbalance from rounding: absorb into the last entry.
		sv.demand[n0-1] += diff
	case diff < 0:
		sv.supply[m0-1] -= diff
	}
	return amount, m0, n0, dummyRow, dummyCol, nil
}

// prepare stages the problem and eagerly builds the full flat cost
// matrix — the classic path for small signatures, where the matrix is
// cheap and every cell is scanned by pricing anyway.
func (sv *Solver) prepare(s, t signature.Signature, g Ground) (float64, error) {
	amount, m0, n0, dummyRow, dummyCol, err := sv.stageProblem(s, t)
	if err != nil {
		return 0, err
	}
	n := sv.n
	sv.cost = growFloats(sv.cost, sv.m*n)
	var ent *costEntry
	if sv.cache != nil {
		ent = sv.cache.acquire(s, t, sv.srcIdx, sv.dstIdx, s.Dim(), groundPtr(g))
	}
	maxCost := 0.0
	for i := 0; i < m0; i++ {
		row := sv.cost[i*n : (i+1)*n]
		if ent != nil && ent.rowDone[i] {
			// Cache hit: copy the stored row, then replay the identical
			// maxCost comparison sequence over the identical floats so the
			// pricing tolerance evolves exactly as in an uncached solve.
			copy(row[:n0], ent.cost[i*n0:(i+1)*n0])
			for j := 0; j < n0; j++ {
				if d := row[j]; d > maxCost {
					maxCost = d
				}
			}
			sv.statCacheHits += n0
		} else {
			ci := s.Centers[sv.srcIdx[i]]
			for j := 0; j < n0; j++ {
				d := g(ci, t.Centers[sv.dstIdx[j]])
				if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
					return 0, fmt.Errorf("emd: ground distance returned %g", d)
				}
				row[j] = d
				if d > maxCost {
					maxCost = d
				}
			}
			sv.statGroundEvals += n0
			if ent != nil {
				copy(ent.cost[i*n0:(i+1)*n0], row[:n0])
				ent.rowDone[i] = true
				sv.statCacheMisses += n0
			}
		}
		if dummyCol {
			row[n0] = 0
		}
	}
	if dummyRow {
		row := sv.cost[m0*n : (m0+1)*n]
		for j := range row {
			row[j] = 0
		}
	}
	sv.maxCost = maxCost
	return amount, nil
}

// prepareLarge stages the problem for the block-pricing path: the cost
// matrix backing store is sized but NOT filled — rows are computed on
// first touch by a pricing block (fillRow), and basis-cell costs are
// carried separately (basisC), so a K=512 pair whose pivots touch only
// a fraction of the matrix never pays the full 512×512 ground-distance
// sweep up front.
func (sv *Solver) prepareLarge(s, t signature.Signature, g Ground) (float64, error) {
	amount, m0, n0, dummyRow, dummyCol, err := sv.stageProblem(s, t)
	if err != nil {
		return 0, err
	}
	m, n := sv.m, sv.n
	sv.cost = growFloats(sv.cost, m*n)
	sv.rowReady = growBools(sv.rowReady, m)
	for i := 0; i < m; i++ {
		sv.rowReady[i] = false
	}
	sv.lazySrcC = growCenters(sv.lazySrcC, m0)
	for i := 0; i < m0; i++ {
		sv.lazySrcC[i] = s.Centers[sv.srcIdx[i]]
	}
	sv.lazyDstC = growCenters(sv.lazyDstC, n0)
	for j := 0; j < n0; j++ {
		sv.lazyDstC[j] = t.Centers[sv.dstIdx[j]]
	}
	sv.lazyG = g
	sv.lazyN0 = n0
	sv.lazyDummyCol = dummyCol
	sv.cEnt = nil
	if sv.cache != nil {
		sv.cEnt = sv.cache.acquire(s, t, sv.srcIdx, sv.dstIdx, s.Dim(), groundPtr(g))
	}
	// Candidate queues: one bsz-capacity segment per pricing block, all
	// empty at the start of a solve (queued cells reference the potentials
	// of the solve that priced them).
	bsz := sv.priceB
	if bsz <= 0 {
		bsz = DefaultPricingBlock
	}
	nblk := (m + bsz - 1) / bsz
	sv.blkQ = growInt64s(sv.blkQ, nblk*bsz)
	sv.blkQn = growInts(sv.blkQn, nblk)
	for b := 0; b < nblk; b++ {
		sv.blkQn[b] = 0
	}
	sv.qCur = 0
	if dummyRow {
		row := sv.cost[m0*n : (m0+1)*n]
		for j := range row {
			row[j] = 0
		}
		sv.rowReady[m0] = true
	}
	// maxCost grows as rows are computed; the pricing tolerance tracks
	// it. Cells priced early under a (smaller) provisional tolerance can
	// only be kept as candidates more eagerly, never wrongly discarded,
	// and the optimality certificate is issued by a full block sweep
	// after every row has been computed.
	sv.maxCost = 0
	sv.blockCur = 0
	return amount, nil
}

// releaseLazy drops the center views captured by prepareLarge so a
// pooled solver does not pin the last pair's signature data. The cache
// entry checkout is dropped too — entries are only valid within the
// solve that acquired them (a later acquire may evict or rebuild them).
func (sv *Solver) releaseLazy() {
	for i := range sv.lazySrcC {
		sv.lazySrcC[i] = nil
	}
	for j := range sv.lazyDstC {
		sv.lazyDstC[j] = nil
	}
	sv.lazyG = nil
	sv.cEnt = nil
}

// fillRow computes cost row i of the lazy matrix (all real columns plus
// the zero dummy column) and marks it ready. A cached row is copied and
// its maxCost comparisons replayed in the identical order, so tolerance
// evolution is bit-identical to the uncached solve.
func (sv *Solver) fillRow(i int) error {
	n := sv.n
	n0 := sv.lazyN0
	row := sv.cost[i*n : (i+1)*n]
	maxCost := sv.maxCost
	if ent := sv.cEnt; ent != nil && ent.rowDone[i] {
		copy(row[:n0], ent.cost[i*n0:(i+1)*n0])
		for j := 0; j < n0; j++ {
			if d := row[j]; d > maxCost {
				maxCost = d
			}
		}
		sv.statCacheHits += n0
	} else {
		ci := sv.lazySrcC[i]
		g := sv.lazyG
		for j := 0; j < n0; j++ {
			d := g(ci, sv.lazyDstC[j])
			if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
				return fmt.Errorf("emd: ground distance returned %g", d)
			}
			row[j] = d
			if d > maxCost {
				maxCost = d
			}
		}
		sv.statGroundEvals += n0
		if ent := sv.cEnt; ent != nil {
			copy(ent.cost[i*n0:(i+1)*n0], row[:n0])
			ent.rowDone[i] = true
			sv.statCacheMisses += n0
		}
	}
	if sv.lazyDummyCol {
		row[n0] = 0
	}
	sv.maxCost = maxCost
	sv.rowReady[i] = true
	return nil
}

// lazyCost returns the ground cost of a single cell without forcing its
// whole row: ready rows are read from the matrix, dummy cells are zero,
// and anything else is one ground-distance evaluation. Building the
// initial basis needs exactly one cell per basis entry, so going
// through lazyCost keeps the up-front cost at O(m+n) evaluations
// instead of O(m·n).
func (sv *Solver) lazyCost(i, j int) (float64, error) {
	if sv.rowReady[i] {
		return sv.cost[i*sv.n+j], nil
	}
	if sv.lazyDummyCol && j == sv.lazyN0 {
		return 0, nil
	}
	// Single-cell cache traffic: NW-corner basis costs are looked up (and
	// stored) cell-by-cell, so a warm re-solve skips even the O(m+n)
	// basis ground evaluations that never belong to a filled row.
	if ent := sv.cEnt; ent != nil {
		idx := i*ent.n0 + j
		if ent.rowDone[i] || ent.cellDone[idx] {
			d := ent.cost[idx]
			if d > sv.maxCost {
				sv.maxCost = d
			}
			sv.statCacheHits++
			return d, nil
		}
	}
	d := sv.lazyG(sv.lazySrcC[i], sv.lazyDstC[j])
	if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
		return 0, fmt.Errorf("emd: ground distance returned %g", d)
	}
	sv.statGroundEvals++
	if ent := sv.cEnt; ent != nil {
		idx := i*ent.n0 + j
		ent.cost[idx] = d
		ent.cellDone[idx] = true
		sv.statCacheMisses++
	}
	if d > sv.maxCost {
		sv.maxCost = d
	}
	return d, nil
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

func growInts(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int, n)
}

func growInt64s(s []int64, n int) []int64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int64, n)
}

func growBools(s []bool, n int) []bool {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]bool, n)
}

func growCenters(s [][]float64, n int) [][]float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([][]float64, n)
}

// flowClamp is the threshold under which a basic flow is considered pure
// Charnes-perturbation residue.
func (sv *Solver) flowClamp() float64 {
	return sv.eps * float64(sv.m+sv.n) * 4
}
