package emd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/randx"
	"repro/internal/signature"
)

// quickSig draws a small random 1-D signature from a quick-check rand
// source.
func quickSig(r *rand.Rand, maxLen int) signature.Signature {
	n := 1 + r.Intn(maxLen)
	s := signature.Signature{Weights: make([]float64, n)}
	total := 0.0
	for i := 0; i < n; i++ {
		s.Centers = append(s.Centers, []float64{r.NormFloat64() * 5})
		w := r.Float64() + 0.01
		s.Weights[i] = w
		total += w
	}
	for i := range s.Weights {
		s.Weights[i] /= total
	}
	return s
}

func TestQuickEMDNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := quickSig(r, 6), quickSig(r, 6)
		d, err := Distance(a, b, Euclidean)
		return err == nil && d >= 0 && !math.IsNaN(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickEMDIdentityOfIndiscernibles(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := quickSig(r, 6)
		d, err := Distance(a, a.Clone(), Euclidean)
		return err == nil && d < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickEMDSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := quickSig(r, 6), quickSig(r, 6)
		d1, err1 := Distance(a, b, Euclidean)
		d2, err2 := Distance(b, a, Euclidean)
		return err1 == nil && err2 == nil && math.Abs(d1-d2) < 1e-7*(1+d1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickEMDDominatedByCenterSpread(t *testing.T) {
	// EMD between normalized 1-D signatures is bounded above by the
	// diameter of the union of supports.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := quickSig(r, 6), quickSig(r, 6)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, s := range []signature.Signature{a, b} {
			for _, c := range s.Centers {
				lo = math.Min(lo, c[0])
				hi = math.Max(hi, c[0])
			}
		}
		d, err := Distance(a, b, Euclidean)
		return err == nil && d <= (hi-lo)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickEMDMergingCoincidentCentersInvariant(t *testing.T) {
	// Splitting one center's mass into two coincident entries must not
	// change the distance (signature representation invariance).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := quickSig(r, 5), quickSig(r, 5)
		split := a.Clone()
		// Split entry 0 into two halves at the same location.
		half := split.Weights[0] / 2
		split.Weights[0] = half
		split.Centers = append(split.Centers, append([]float64(nil), split.Centers[0]...))
		split.Weights = append(split.Weights, half)
		d1, err1 := Distance(a, b, Euclidean)
		d2, err2 := Distance(split, b, Euclidean)
		return err1 == nil && err2 == nil && math.Abs(d1-d2) < 1e-7*(1+d1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickPartialEMDAmount(t *testing.T) {
	// With unequal totals, the shipped amount must equal the smaller
	// total (Eq. 11) regardless of structure.
	rng := randx.New(99)
	for trial := 0; trial < 100; trial++ {
		a := randomSig(rng, 2, 5, 1+rng.Float64()*4)
		b := randomSig(rng, 2, 5, 1+rng.Float64()*4)
		res, err := DistanceFlow(a, b, Euclidean)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Min(a.TotalWeight(), b.TotalWeight())
		if math.Abs(res.Amount-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d: amount %g, want %g", trial, res.Amount, want)
		}
	}
}
