package repro

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/randx"
)

// TestPublicAPIEndToEnd drives the facade exactly as the README
// quickstart does: build bags, run the detector, check the alarm.
func TestPublicAPIEndToEnd(t *testing.T) {
	rng := randx.New(1)
	var seq Sequence
	for ts := 0; ts < 30; ts++ {
		mu := 0.0
		if ts >= 15 {
			mu = 6
		}
		vals := make([]float64, 80)
		for i := range vals {
			vals[i] = rng.Normal(mu, 1)
		}
		seq = append(seq, BagFromScalars(ts, vals))
	}
	points, err := Run(Config{
		Tau:      5,
		TauPrime: 5,
		Builder:  NewHistogramBuilder(-10, 10, 40),
	}, seq)
	if err != nil {
		t.Fatal(err)
	}
	alarms := Alarms(points)
	m := MatchAlarms(alarms, []int{15}, 1, 4)
	if m.Recall() != 1 {
		t.Errorf("change not detected: %v", m)
	}
	if len(Scores(points)) != len(points) {
		t.Error("Scores helper wrong length")
	}
}

func TestPublicBuilders(t *testing.T) {
	b2 := NewBag(0, [][]float64{{1, 2}, {3, 4}, {10, 10}, {11, 11}})
	for name, bld := range map[string]Builder{
		"kmeans":   NewKMeansBuilder(2, 1),
		"kmedoids": NewKMedoidsBuilder(2, 1),
		"online":   NewOnlineBuilder(2, 0.5),
		"grid":     NewGridBuilder([]float64{0, 0}, []float64{12, 12}, 3),
	} {
		s, err := bld.Build(b2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Len() == 0 {
			t.Fatalf("%s: empty signature", name)
		}
	}
}

func TestPublicEMD(t *testing.T) {
	s := Signature{Centers: [][]float64{{0, 0}}, Weights: []float64{1}}
	u := Signature{Centers: [][]float64{{3, 4}}, Weights: []float64{1}}
	for _, tc := range []struct {
		g    Ground
		want float64
	}{
		{nil, 5}, {Euclidean, 5}, {Manhattan, 7}, {Chebyshev, 4},
	} {
		got, err := EMD(s, u, tc.g)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("EMD = %g, want %g", got, tc.want)
		}
	}
}

func TestPublicStreamingDetector(t *testing.T) {
	det, err := NewDetector(Config{
		Tau: 3, TauPrime: 3,
		Score:     ScoreLR,
		Weighting: WeightDiscounted,
		Builder:   NewHistogramBuilder(-5, 15, 20),
		Bootstrap: BootstrapConfig{Replicates: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(2)
	var got []Point
	for ts := 0; ts < 16; ts++ {
		mu := 0.0
		if ts >= 8 {
			mu = 8
		}
		vals := make([]float64, 50)
		for i := range vals {
			vals[i] = rng.Normal(mu, 1)
		}
		p, err := det.Push(BagFromScalars(ts, vals))
		if err != nil {
			t.Fatal(err)
		}
		if p != nil {
			got = append(got, *p)
		}
	}
	if len(got) == 0 {
		t.Fatal("no points produced")
	}
	// The score at the change must dominate.
	best, bestT := math.Inf(-1), -1
	for _, p := range got {
		if p.Score > best {
			best, bestT = p.Score, p.T
		}
	}
	if bestT != 8 {
		t.Errorf("peak score at T=%d, want 8", bestT)
	}
}

func TestPublicPairwiseEMDAndMDS(t *testing.T) {
	rng := randx.New(3)
	var seq Sequence
	for ts := 0; ts < 10; ts++ {
		mu := 0.0
		if ts >= 5 {
			mu = 10
		}
		vals := make([]float64, 40)
		for i := range vals {
			vals[i] = rng.Normal(mu, 1)
		}
		seq = append(seq, BagFromScalars(ts, vals))
	}
	m, err := PairwiseEMD(NewHistogramBuilder(-5, 15, 40), seq, nil)
	if err != nil {
		t.Fatal(err)
	}
	coords, vals, err := MDSEmbed(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(coords) != 10 || len(vals) != 10 {
		t.Fatal("MDS shapes wrong")
	}
	// The two regimes must separate along the first MDS axis.
	gap := 0.0
	for i := 0; i < 5; i++ {
		gap += coords[i][0] - coords[i+5][0]
	}
	if math.Abs(gap/5) < 1 {
		t.Errorf("MDS did not separate regimes: mean gap %g", gap/5)
	}
}

// TestPublicTiledPairwiseAndShardMerge exercises the tiled surface the
// way a corpus-scale caller would: full tiled matrix == legacy shim
// output bit-for-bit, MDS accepts the Rows() view, and a 2-shard
// compute → MergePairwise run reproduces the matrix exactly.
func TestPublicTiledPairwiseAndShardMerge(t *testing.T) {
	rng := randx.New(3)
	var seq Sequence
	for ts := 0; ts < 12; ts++ {
		mu := 0.0
		if ts >= 6 {
			mu = 10
		}
		vals := make([]float64, 40)
		for i := range vals {
			vals[i] = rng.Normal(mu, 1)
		}
		seq = append(seq, BagFromScalars(ts, vals))
	}
	legacy, err := PairwiseEMD(NewHistogramBuilder(-5, 15, 40), seq, nil)
	if err != nil {
		t.Fatal(err)
	}
	factory := HistogramFactory(-5, 15, 40)
	m, err := PairwiseEMDTiled(seq,
		WithPairBuilderFactory(factory, 1),
		WithTileSize(4),
		WithPairWorkers(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := range legacy {
		for j := range legacy[i] {
			if m.At(i, j) != legacy[i][j] {
				t.Fatalf("tiled cell (%d,%d) = %g, legacy = %g", i, j, m.At(i, j), legacy[i][j])
			}
		}
	}
	if _, _, err := MDSEmbed(m.Rows(), 2); err != nil {
		t.Fatalf("MDS over Rows() view: %v", err)
	}
	var parts []*PartialMatrix
	for s := 0; s < 2; s++ {
		p, err := PairwiseEMDShard(seq,
			WithPairBuilderFactory(factory, 1),
			WithTileSize(4),
			WithShard(s, 2),
		)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p)
	}
	merged, err := MergePairwise(parts...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.N(); i++ {
		for j := 0; j < m.N(); j++ {
			if merged.At(i, j) != m.At(i, j) {
				t.Fatalf("merged cell (%d,%d) = %g, want %g", i, j, merged.At(i, j), m.At(i, j))
			}
		}
	}
}

func TestIntervalExposed(t *testing.T) {
	iv := Interval{Lo: 1, Up: 2, Point: 1.5}
	if !iv.Contains(1.5) || iv.Width() != 1 {
		t.Error("Interval helpers broken through facade")
	}
}

func TestLearnFeatureWeightsFacade(t *testing.T) {
	rng := randx.New(21)
	changes := []int{12}
	var seq Sequence
	for ts := 0; ts < 24; ts++ {
		mu := 0.0
		if ts >= 12 {
			mu = 3
		}
		pts := make([][]float64, 50)
		for i := range pts {
			pts[i] = []float64{rng.Normal(mu, 1), rng.Normal(0, 5)}
		}
		seq = append(seq, NewBag(ts, pts))
	}
	sel, err := LearnFeatureWeights(seq, changes, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Weights[0] != 1 || sel.Weights[1] >= 0.5 {
		t.Errorf("weights = %v, want dim 0 dominant", sel.Weights)
	}
	// The wrapped builder must be usable in a Config.
	points, err := Run(Config{
		Tau: 4, TauPrime: 4,
		Builder:   sel.Builder(NewKMeansBuilder(4, 1)),
		Bootstrap: BootstrapConfig{Replicates: 80},
	}, seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no points through weighted builder")
	}
}

func TestWhitenFacade(t *testing.T) {
	rng := randx.New(22)
	var seq Sequence
	for ts := 0; ts < 4; ts++ {
		run := make([]float64, 100)
		for i := 1; i < 100; i++ {
			run[i] = 0.8*run[i-1] + rng.Normal(0, 1)
		}
		seq = append(seq, BagFromScalars(ts, run))
	}
	out, err := Whiten(seq, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 || out[0].Len() != 99 {
		t.Fatalf("whitened shape: %d bags, first has %d points", len(out), out[0].Len())
	}
}

func TestBagAndSignatureJSONRoundTrip(t *testing.T) {
	// Bags and signatures are plain exported structs: they serialize
	// with encoding/json as-is, which the bagcpd CLI and downstream
	// pipelines rely on.
	b := NewBag(3, [][]float64{{1, 2}, {3, 4}})
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	var back Bag
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.T != 3 || back.Len() != 2 || back.Points[1][1] != 4 {
		t.Fatalf("bag round trip: %+v", back)
	}

	sig, err := NewKMeansBuilder(2, 1).Build(b)
	if err != nil {
		t.Fatal(err)
	}
	data, err = json.Marshal(sig)
	if err != nil {
		t.Fatal(err)
	}
	var sigBack Signature
	if err := json.Unmarshal(data, &sigBack); err != nil {
		t.Fatal(err)
	}
	if err := sigBack.Validate(); err != nil {
		t.Fatalf("signature round trip invalid: %v", err)
	}
	d, err := EMD(sig, sigBack, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-12 {
		t.Fatalf("round-tripped signature differs: EMD %g", d)
	}
}

func TestSegmentsFacade(t *testing.T) {
	segs := Segments([]int{15, 16}, 30, 5)
	if len(segs) != 2 || segs[0] != (Segment{Start: 0, End: 15}) || segs[1] != (Segment{Start: 15, End: 30}) {
		t.Fatalf("Segments = %v", segs)
	}
}

// TestEngineFacade drives the multi-stream engine exactly as the package
// quick start does: options-built engine, per-stream handles, and the
// batch entry point, with per-stream output matching a standalone
// detector built from the same derived config.
func TestEngineFacade(t *testing.T) {
	newEng := func() *Engine {
		eng, err := NewEngine(
			WithTau(3), WithTauPrime(3),
			WithBuilderFactory(HistogramFactory(-10, 10, 30)),
			WithBootstrap(BootstrapConfig{Replicates: 150}),
			WithSeed(21),
			WithWorkers(2),
		)
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}

	mkBag := func(id string, ts int) Bag {
		rng := randx.New(randx.SplitSeedString(5, id) + int64(ts))
		mu := 0.0
		if ts >= 7 {
			mu = 5
		}
		vals := make([]float64, 50)
		for i := range vals {
			vals[i] = rng.Normal(mu, 1)
		}
		return BagFromScalars(ts, vals)
	}

	ids := []string{"alpha", "beta", "gamma"}
	eng := newEng()
	got := map[string][]*Point{}
	for ts := 0; ts < 14; ts++ {
		batch := make([]StreamBag, len(ids))
		for i, id := range ids {
			batch[i] = StreamBag{StreamID: id, Bag: mkBag(id, ts)}
		}
		results, err := eng.PushBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range results {
			if r.Point != nil {
				got[r.StreamID] = append(got[r.StreamID], r.Point)
			}
		}
	}
	if eng.Len() != len(ids) {
		t.Fatalf("engine has %d streams, want %d", eng.Len(), len(ids))
	}

	// Standalone detectors from the engine's own per-stream config must
	// reproduce each stream bit-for-bit.
	for _, id := range ids {
		det, err := NewDetector(newEng().StreamConfig(id))
		if err != nil {
			t.Fatal(err)
		}
		var want []*Point
		for ts := 0; ts < 14; ts++ {
			p, err := det.Push(mkBag(id, ts))
			if err != nil {
				t.Fatal(err)
			}
			if p != nil {
				want = append(want, p)
			}
		}
		if len(got[id]) != len(want) {
			t.Fatalf("stream %s: %d points, want %d", id, len(got[id]), len(want))
		}
		for i := range want {
			if got[id][i].T != want[i].T || got[id][i].Score != want[i].Score ||
				got[id][i].Interval != want[i].Interval || got[id][i].Alarm != want[i].Alarm {
				t.Fatalf("stream %s point %d: %+v != %+v", id, i, *got[id][i], *want[i])
			}
		}
		// Every stream saw the mean shift at t=5.
		var alarms []int
		for _, p := range got[id] {
			if p.Alarm {
				alarms = append(alarms, p.T)
			}
		}
		if m := MatchAlarms(alarms, []int{7}, 1, 3); m.Recall() != 1 {
			t.Errorf("stream %s: change not detected: %v", id, m)
		}
	}
}

// TestNewEngineOptionValidation: option mistakes fail at construction.
func TestNewEngineOptionValidation(t *testing.T) {
	if _, err := NewEngine(WithTau(3), WithTauPrime(3)); err == nil {
		t.Error("missing builder factory should fail")
	}
	if _, err := NewEngine(WithBuilderFactory(HistogramFactory(0, 1, 4))); err == nil {
		t.Error("missing tau should fail")
	}
	if _, err := NewEngine(
		WithTau(3), WithTauPrime(1), WithScore(ScoreLR),
		WithBuilderFactory(HistogramFactory(0, 1, 4)),
	); err == nil {
		t.Error("ScoreLR with TauPrime < 2 should fail")
	}
}

// TestDeprecatedBuildersUnchanged: the deprecated seed-taking builder
// constructors now route through the factories and must behave exactly
// as a direct factory call.
func TestDeprecatedBuildersUnchanged(t *testing.T) {
	pts := make([][]float64, 40)
	rng := randx.New(3)
	for i := range pts {
		pts[i] = []float64{rng.Normal(0, 1), rng.Normal(2, 1)}
	}
	b := NewBag(0, pts)
	old, err := NewKMeansBuilder(4, 9).Build(b)
	if err != nil {
		t.Fatal(err)
	}
	viaFactory, err := KMeansFactory(4)(9).Build(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(old.Centers) != len(viaFactory.Centers) {
		t.Fatalf("cluster counts differ: %d vs %d", len(old.Centers), len(viaFactory.Centers))
	}
	for i := range old.Centers {
		for j := range old.Centers[i] {
			if old.Centers[i][j] != viaFactory.Centers[i][j] {
				t.Fatal("deprecated builder diverged from factory")
			}
		}
		if old.Weights[i] != viaFactory.Weights[i] {
			t.Fatal("deprecated builder weights diverged from factory")
		}
	}
}
